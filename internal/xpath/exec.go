package xpath

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"arb/internal/core"
	"arb/internal/parallel"
	"arb/internal/storage"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// Prepared is a multi-pass query bound to a label-name table, with one
// persistent engine per pass: the lazily computed automata (states and
// transition tables) survive across executions, so repeated queries over
// a persistent database pay the Horn-solving cost once. A plain TMNF
// program is the degenerate single-pass case (PrepareProgram). Prepared
// is the execution layer behind the arb package's PreparedQuery.
// Executions of one Prepared may overlap — each run keeps its own
// per-run state (aux labelings, temp files, results) and reaches the
// shared engines through their internal locks.
type Prepared struct {
	aux  []*core.Engine // one engine per auxiliary pass, in pass order
	main *core.Engine
	prog *tmnf.Program // the main pass's program
}

// PrepareProgram compiles a TMNF program into a single-pass Prepared
// bound to the given name table.
func PrepareProgram(prog *tmnf.Program, names *tree.Names) (*Prepared, error) {
	if len(prog.Queries()) == 0 {
		return nil, fmt.Errorf("program defines no query predicate (name one QUERY)")
	}
	c, err := core.Compile(prog)
	if err != nil {
		return nil, err
	}
	return &Prepared{main: core.NewEngine(c, names), prog: prog}, nil
}

// Prepare binds the compiled query to a name table, compiling every pass
// to its own engine.
func (q *Query) Prepare(names *tree.Names) (*Prepared, error) {
	p := &Prepared{prog: q.Main}
	for k, pass := range q.Passes {
		c, err := core.Compile(pass)
		if err != nil {
			return nil, fmt.Errorf("xpath: pass %d: %w", k, err)
		}
		p.aux = append(p.aux, core.NewEngine(c, names))
	}
	c, err := core.Compile(q.Main)
	if err != nil {
		return nil, err
	}
	p.main = core.NewEngine(c, names)
	return p, nil
}

// Queries returns the query predicates of the main pass.
func (p *Prepared) Queries() []tmnf.Pred { return p.prog.Queries() }

// Program returns the main pass's program (for predicate naming).
func (p *Prepared) Program() *tmnf.Program { return p.prog }

// Passes returns the number of automata passes an execution runs
// (auxiliary passes plus the main pass).
func (p *Prepared) Passes() int { return len(p.aux) + 1 }

// Summary returns the label-determined selection summary of the query's
// main engine (core.SelSummary), or nil when the query has no such
// summary: multi-pass queries never do — their main pass reads aux bits
// the summary cannot see — and single-pass queries only when the
// selection provably depends on nothing but each node's label and
// root-ness. Non-nil summaries feed the result cache's subsumption check.
func (p *Prepared) Summary() *core.SelSummary {
	if len(p.aux) > 0 {
		return nil
	}
	return p.main.SelectionSummary()
}

// ResolveWorkers maps a worker request to a concrete count: n >= 1 is
// taken as-is, anything else (0, negative) means all CPUs.
func ResolveWorkers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ExecOpts configures one execution of a Prepared query. Workers must be
// resolved to a concrete count (>= 1) by the caller.
type ExecOpts struct {
	// Workers is the number of parallel evaluation workers; 1 runs the
	// sequential paths.
	Workers int
	// KeepStates retains per-node evaluation state from the main pass:
	// in-memory runs record the automaton states in the Result
	// (Result.BUStateOf/TDStateOf); disk runs keep the phase-1 state
	// file under a unique per-run name reported as Result.StateFile.
	KeepStates bool
	// MarkTo, when non-nil, streams the document back out as XML with
	// the nodes selected by query predicate MarkQuery marked up. On disk
	// the marked document is produced during the main pass's second scan
	// itself (Section 6.3); marking forces that pass sequential.
	MarkTo    io.Writer
	MarkQuery int
	// AuxDir is where disk executions place the temporary aux-mask
	// sidecar files chaining the passes; empty means next to the
	// database. Each execution uses a private subdirectory, removed when
	// the execution finishes, fails, or is cancelled.
	AuxDir string
	// Index optionally supplies a subtree index with label signatures
	// over the in-memory tree (storage.BuildTreeIndex), enabling
	// selectivity-aware pruning for tree executions; sessions cache one
	// per tree. Disk executions use the database's own .idx sidecar.
	Index *storage.SubtreeIndex
	// NoPrune disables selectivity-aware scan pruning on every pass.
	NoPrune bool
}

// ExecStats is the merged cost profile of one execution across all its
// passes.
type ExecStats struct {
	Engine core.Stats     // automata work (lazy transitions, phase times)
	Disk   core.DiskStats // scan profile; zero for in-memory executions
	Passes int            // passes executed (aux + main)
}

// statsDelta runs f with a fresh per-run stats sink and folds exactly
// the work f's drivers attributed to the sink into es. The drivers
// mirror their node counts and phase times into the sink and reach the
// shared engines through ShareTo views, which credit each lazily
// computed transition to the run whose cache miss computed it — so the
// profile is deterministic even when executions overlap on one
// Prepared's engines (snapshot deltas of the engines' cumulative Stats
// would attribute concurrent cache work to whichever run observed it).
func statsDelta(es *ExecStats, f func(rs *core.RunStats) error) error {
	rs := &core.RunStats{}
	err := f(rs)
	es.Engine.Add(rs.Snapshot())
	return err
}

// ExecTree evaluates the prepared query over an in-memory tree: the
// auxiliary passes run in order, each feeding its selected nodes into the
// Aux labeling of later passes, and the main pass's unified result is
// returned. Cancelling ctx aborts the pass in progress with ctx.Err().
func (p *Prepared) ExecTree(ctx context.Context, t *tree.Tree, opts ExecOpts) (*core.Result, ExecStats, error) {
	es := ExecStats{Passes: p.Passes()}
	if t.Len() == 0 {
		return nil, es, fmt.Errorf("xpath: empty tree")
	}
	var res *core.Result
	err := statsDelta(&es, func(rs *core.RunStats) error {
		var aux []uint16
		var auxFn func(v tree.NodeID) uint16
		if len(p.aux) > 0 {
			aux = make([]uint16, t.Len())
			auxFn = func(v tree.NodeID) uint16 { return aux[v] }
		}
		// The first pass reads no aux bits (none have been produced yet),
		// so it runs with Aux nil — which is also what lets it prune.
		auxForPass := func(k int) func(v tree.NodeID) uint16 {
			if k == 0 {
				return nil
			}
			return auxFn
		}
		runPass := func(e *core.Engine, ro core.RunOpts) (*core.Result, error) {
			ro.Index = opts.Index
			ro.NoPrune = opts.NoPrune
			ro.Run = rs
			if opts.Workers > 1 {
				return parallel.RunContext(ctx, e, t, opts.Workers, ro)
			}
			return e.RunContext(ctx, t, ro)
		}
		for k, e := range p.aux {
			pres, err := runPass(e, core.RunOpts{Aux: auxForPass(k)})
			if err != nil {
				return fmt.Errorf("xpath: pass %d: %w", k, err)
			}
			bit := uint16(1) << uint(k)
			pres.Walk(pres.Queries()[0], func(v tree.NodeID) bool {
				aux[v] |= bit
				return true
			})
		}
		var err error
		res, err = runPass(p.main, core.RunOpts{Aux: auxForPass(len(p.aux)), KeepStates: opts.KeepStates})
		if err != nil {
			return err
		}
		if opts.MarkTo != nil {
			return emitTreeMarked(ctx, t, opts.MarkTo, func(v int64) bool {
				return res.Holds(p.Queries()[opts.MarkQuery], tree.NodeID(v))
			})
		}
		return nil
	})
	if err != nil {
		return nil, es, err
	}
	return res, es, nil
}

// ExecDisk evaluates the prepared query over a .arb database entirely in
// secondary storage: each auxiliary pass runs as two linear scans whose
// phase 2 streams an updated 2-byte-per-node aux-mask sidecar file, which
// the next pass reads alongside the database; the main pass returns the
// unified result. Cancelling ctx aborts the scan in progress with
// ctx.Err() and removes every temporary sidecar the execution created.
func (p *Prepared) ExecDisk(ctx context.Context, db *storage.DB, opts ExecOpts) (*core.Result, ExecStats, error) {
	es := ExecStats{Passes: p.Passes()}
	var res *core.Result
	err := statsDelta(&es, func(rs *core.RunStats) error {
		runPass := func(e *core.Engine, do core.DiskOpts) (*core.Result, error) {
			var r *core.Result
			var ds *core.DiskStats
			var err error
			do.Run = rs
			if opts.Workers > 1 {
				r, ds, err = e.RunDiskParallelContext(ctx, db, opts.Workers, do)
			} else {
				r, ds, err = e.RunDiskContext(ctx, db, do)
			}
			if ds != nil {
				es.Disk.Merge(*ds)
			}
			return r, err
		}
		var auxIn string
		if len(p.aux) > 0 {
			// A private temp directory per execution: concurrent queries
			// sharing a database directory must not clobber each other's
			// sidecar files. Removing it afterwards — on success, failure
			// and cancellation alike — is what keeps cancelled multi-pass
			// executions from leaking sidecars.
			dir := opts.AuxDir
			if dir == "" {
				dir = filepath.Dir(db.Base)
			}
			tmp, err := os.MkdirTemp(dir, "arb-aux-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			for k, e := range p.aux {
				auxOut := filepath.Join(tmp, fmt.Sprintf("pass%d.aux", k))
				_, err := runPass(e, core.DiskOpts{
					AuxIn:     auxIn,
					AuxOut:    auxOut,
					AuxOutBit: uint8(k),
					NoPrune:   opts.NoPrune,
					// Each pass has exactly one query predicate, index 0.
				})
				if err != nil {
					return fmt.Errorf("xpath: pass %d: %w", k, err)
				}
				auxIn = auxOut
			}
		}
		var err error
		res, err = runPass(p.main, core.DiskOpts{
			AuxIn:         auxIn,
			KeepStateFile: opts.KeepStates,
			MarkTo:        opts.MarkTo,
			MarkQuery:     opts.MarkQuery,
			NoPrune:       opts.NoPrune,
		})
		return err
	})
	if err != nil {
		return nil, es, err
	}
	return res, es, nil
}

// emitTreeMarked streams an in-memory tree out as XML with selected nodes
// marked up, through the same emitter the disk path uses.
func emitTreeMarked(ctx context.Context, t *tree.Tree, w io.Writer, selected func(v int64) bool) error {
	em := storage.NewXMLEmitter(w, t.Names())
	cancel := storage.NewCanceller(ctx)
	for v := 0; v < t.Len(); v++ {
		if err := cancel.Step(); err != nil {
			return err
		}
		rec := storage.Record{
			Label:     uint16(t.Label(tree.NodeID(v))),
			HasFirst:  t.HasFirst(tree.NodeID(v)),
			HasSecond: t.HasSecond(tree.NodeID(v)),
		}
		if err := em.Node(int64(v), rec, selected(int64(v))); err != nil {
			return err
		}
	}
	return em.Finish()
}
