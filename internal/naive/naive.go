// Package naive implements a textbook semi-naive fixpoint evaluator for
// TMNF programs over in-memory trees.
//
// It is the class of evaluation the paper improves on: linear in |P|*n,
// but it visits each node up to |P| times, requires the whole tree (plus a
// predicate/node boolean matrix) in main memory, and needs parent
// pointers. In this repository it serves two purposes: as the correctness
// oracle for differential tests of the two-phase automata engine (Theorem
// 4.1), and as the "conventional main-memory evaluation" baseline in the
// ablation benchmarks.
package naive

import (
	"arb/internal/edb"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// Result holds the full evaluation of a TMNF program: the truth value of
// every IDB predicate on every node (the paper's P(T)).
type Result struct {
	prog  *tmnf.Program
	n     int
	truth [][]bool // truth[pred][node]
}

// Holds reports whether predicate p holds on node v.
func (r *Result) Holds(p tmnf.Pred, v tree.NodeID) bool { return r.truth[p][v] }

// Selected returns the nodes on which predicate q holds, in preorder.
func (r *Result) Selected(q tmnf.Pred) []tree.NodeID {
	var out []tree.NodeID
	for v := 0; v < r.n; v++ {
		if r.truth[q][v] {
			out = append(out, tree.NodeID(v))
		}
	}
	return out
}

// Count returns the number of nodes on which q holds.
func (r *Result) Count(q tmnf.Pred) int {
	c := 0
	for v := 0; v < r.n; v++ {
		if r.truth[q][v] {
			c++
		}
	}
	return c
}

// Evaluate computes the minimum model of program p over tree t by
// semi-naive fixpoint iteration.
func Evaluate(t *tree.Tree, p *tmnf.Program) *Result {
	n := t.Len()
	np := p.NumPreds()
	res := &Result{prog: p, n: n, truth: make([][]bool, np)}
	for i := range res.truth {
		res.truth[i] = make([]bool, n)
	}
	if n == 0 {
		return res
	}

	parent, kindOf := t.Parents()
	rules := p.Rules()
	names := t.Names()
	unaries := p.Unaries()

	// occ indexes rules by the IDB predicates in their bodies.
	occ := make([][]int32, np)
	for ri, r := range rules {
		switch r.Kind {
		case tmnf.RuleLocal:
			for _, a := range r.Body {
				if !a.IsUnary {
					occ[a.Pred] = append(occ[a.Pred], int32(ri))
				}
			}
		case tmnf.RuleMove, tmnf.RuleInvMove:
			occ[r.From] = append(occ[r.From], int32(ri))
		}
	}

	// Per-node unary truth is evaluated on demand from signatures.
	holdsUnary := func(ui int, v tree.NodeID) bool {
		return edb.Holds(unaries[ui], names, edb.SigOf(t, v))
	}

	type fact struct {
		p tmnf.Pred
		v tree.NodeID
	}
	var queue []fact
	derive := func(p tmnf.Pred, v tree.NodeID) {
		if !res.truth[p][v] {
			res.truth[p][v] = true
			queue = append(queue, fact{p, v})
		}
	}

	// fireLocal checks a local rule at node v (all body atoms evaluated).
	fireLocal := func(r *tmnf.Rule, v tree.NodeID) {
		for _, a := range r.Body {
			if a.IsUnary {
				if !holdsUnary(a.U, v) {
					return
				}
			} else if !res.truth[a.Pred][v] {
				return
			}
		}
		derive(r.Head, v)
	}

	// Initialisation: local rules whose bodies contain no IDB predicates
	// can fire immediately on matching nodes.
	for ri := range rules {
		r := &rules[ri]
		if r.Kind != tmnf.RuleLocal {
			continue
		}
		pure := true
		for _, a := range r.Body {
			if !a.IsUnary {
				pure = false
				break
			}
		}
		if !pure {
			continue
		}
		for v := 0; v < n; v++ {
			fireLocal(r, tree.NodeID(v))
		}
	}

	// Propagation.
	for len(queue) > 0 {
		f := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ri := range occ[f.p] {
			r := &rules[ri]
			switch r.Kind {
			case tmnf.RuleLocal:
				fireLocal(r, f.v)
			case tmnf.RuleMove:
				// Head at the Rel-child of the node where From holds.
				var c tree.NodeID
				if r.Rel == tmnf.RelFirst {
					c = t.First(f.v)
				} else {
					c = t.Second(f.v)
				}
				if c != tree.None {
					derive(r.Head, c)
				}
			case tmnf.RuleInvMove:
				// Head at the parent of which f.v is the Rel-child.
				if parent[f.v] != tree.None && tmnf.Rel(kindOf[f.v]) == r.Rel {
					derive(r.Head, parent[f.v])
				}
			}
		}
	}
	return res
}
