package naive

import (
	"math/rand"
	"testing"

	"arb/internal/testutil"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// chainTree builds a root with n children labeled by the given tags.
func chainTree(tags ...string) *tree.Tree {
	t := tree.New(nil)
	root := t.AddNode(t.Names().MustIntern("r"))
	prev := tree.None
	for _, tag := range tags {
		n := t.AddNode(t.Names().MustIntern(tag))
		if prev == tree.None {
			t.SetFirst(root, n)
		} else {
			t.SetSecond(prev, n)
		}
		prev = n
	}
	return t
}

// TestExample22 runs the paper's Example 2.2 program (even number of
// leaves labeled "a" per subtree) on sibling chains of varying length.
func TestExample22(t *testing.T) {
	src := `
Even :- Leaf, -Label[a];
Odd  :- Leaf, Label[a];
SFREven :- Even, LastSibling;
SFROdd  :- Odd, LastSibling;
FSEven :- SFREven.invNextSibling;
FSOdd  :- SFROdd.invNextSibling;
SFREven :- FSEven, Even;
SFROdd  :- FSEven, Odd;
SFROdd  :- FSOdd, Even;
SFREven :- FSOdd, Odd;
Even :- SFREven.invFirstChild;
Odd  :- SFROdd.invFirstChild;
`
	for _, tc := range []struct {
		tags []string
		even bool
	}{
		{[]string{"a"}, false},
		{[]string{"a", "a"}, true},
		{[]string{"a", "b", "a"}, true},
		{[]string{"a", "b", "a", "a"}, false},
		{[]string{"b", "b"}, true},
	} {
		prog := tmnf.MustParse(src)
		if err := prog.SetQueries("Even", "Odd"); err != nil {
			t.Fatal(err)
		}
		tr := chainTree(tc.tags...)
		res := Evaluate(tr, prog)
		even, _ := prog.Pred("Even")
		odd, _ := prog.Pred("Odd")
		if res.Holds(even, 0) != tc.even {
			t.Errorf("%v: Even(root) = %v, want %v", tc.tags, res.Holds(even, 0), tc.even)
		}
		if res.Holds(odd, 0) == tc.even {
			t.Errorf("%v: Odd(root) = %v, want %v", tc.tags, res.Holds(odd, 0), !tc.even)
		}
	}
}

func TestMultipleQueries(t *testing.T) {
	prog := tmnf.MustParse(`
A :- Label[a];
B :- Label[b];
`)
	if err := prog.SetQueries("A", "B"); err != nil {
		t.Fatal(err)
	}
	tr := chainTree("a", "b", "a")
	res := Evaluate(tr, prog)
	a, _ := prog.Pred("A")
	b, _ := prog.Pred("B")
	if res.Count(a) != 2 || res.Count(b) != 1 {
		t.Fatalf("counts: A=%d B=%d", res.Count(a), res.Count(b))
	}
	sel := res.Selected(a)
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 3 {
		t.Fatalf("Selected(A) = %v", sel)
	}
}

// TestFixpointMonotone checks that evaluation is a fixpoint: re-deriving
// any rule adds nothing.
func TestFixpointMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 30; iter++ {
		tr := testutil.RandomTree(rng, 40)
		prog := testutil.RandomProgramParsed(rng, 4, 10)
		res := Evaluate(tr, prog)
		parent, kind := tr.Parents()
		for _, r := range prog.Rules() {
			for v := 0; v < tr.Len(); v++ {
				id := tree.NodeID(v)
				switch r.Kind {
				case tmnf.RuleMove:
					// Head at the child if From at the parent.
					if p := parent[v]; p != tree.None && int(kind[v]) == int(r.Rel) {
						if res.Holds(r.From, p) && !res.Holds(r.Head, id) {
							t.Fatalf("iter %d: move rule not closed at %d", iter, v)
						}
					}
				case tmnf.RuleInvMove:
					var c tree.NodeID
					if r.Rel == tmnf.RelFirst {
						c = tr.First(id)
					} else {
						c = tr.Second(id)
					}
					if c != tree.None && res.Holds(r.From, c) && !res.Holds(r.Head, id) {
						t.Fatalf("iter %d: inverse move rule not closed at %d", iter, v)
					}
				}
			}
		}
	}
}

func TestEmptyProgramAndSingleNode(t *testing.T) {
	tr := tree.New(nil)
	tr.AddNode(tr.Names().MustIntern("a"))
	prog := tmnf.MustParse(`QUERY :- Root;`)
	res := Evaluate(tr, prog)
	if !res.Holds(prog.Queries()[0], 0) {
		t.Fatal("Root not derived at the root")
	}
}
