package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"arb/internal/stream"
	"arb/internal/tmnf"
)

// PathRegex is one of the paper's benchmark regular expressions
// (Section 6.2): always of the form w1.w2*.w3, where the wi are nonempty
// words over a tag alphabet. Its size is |w1| + |w2| + |w3|.
type PathRegex struct {
	W1, W2, W3 []string
}

// RandomPathRegex draws a regex of exactly the given size (>= 3) over the
// alphabet, splitting the size randomly between the three words with each
// at least one symbol, as in the paper's experiments.
func RandomPathRegex(rng *rand.Rand, size int, alphabet []string) PathRegex {
	if size < 3 {
		panic(fmt.Sprintf("workload: regex size %d < 3", size))
	}
	// Choose |w1|, |w2| >= 1 with |w3| = size - |w1| - |w2| >= 1.
	n1 := 1 + rng.Intn(size-2)
	n2 := 1 + rng.Intn(size-n1-1)
	n3 := size - n1 - n2
	word := func(n int) []string {
		w := make([]string, n)
		for i := range w {
			w[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return w
	}
	return PathRegex{W1: word(n1), W2: word(n2), W3: word(n3)}
}

// Size returns |w1| + |w2| + |w3|.
func (r PathRegex) Size() int { return len(r.W1) + len(r.W2) + len(r.W3) }

// String renders the regex in the paper's notation, e.g.
// "S.VP.(NP.PP)*.NP".
func (r PathRegex) String() string {
	return fmt.Sprintf("%s.(%s)*.%s",
		strings.Join(r.W1, "."), strings.Join(r.W2, "."), strings.Join(r.W3, "."))
}

// The three R steps of the paper's benchmark threads. RTreebank walks to
// a child in the document tree (top-down); RFlat walks to the previous
// sibling (bottom-up in the right-deep flat tree); RInfix walks to the
// in-order predecessor in the direct binary infix tree (sideways
// caterpillar, Section 6.2 thread 3).
const (
	RTreebank = "FirstChild.NextSibling*"
	RFlat     = "invNextSibling"
	RInfix    = "(FirstChild.SecondChild*.-HasSecondChild | -HasFirstChild.invFirstChild*.invSecondChild)"
)

// TMNFSource renders the single-rule Arb program that matches the regex
// with the given R step, marking the endpoint of each matching walk:
//
//	QUERY :- V.Label[w1_1].R.Label[w1_2]. ... (R.Label[w2_1]...)* ... ;
func (r PathRegex) TMNFSource(rstep string) string {
	var parts []string
	for i, s := range r.W1 {
		if i > 0 {
			parts = append(parts, rstep)
		}
		parts = append(parts, "Label["+s+"]")
	}
	var group []string
	for _, s := range r.W2 {
		group = append(group, rstep, "Label["+s+"]")
	}
	parts = append(parts, "("+strings.Join(group, ".")+")*")
	for _, s := range r.W3 {
		parts = append(parts, rstep, "Label["+s+"]")
	}
	return "QUERY :- V." + strings.Join(parts, ".") + ";"
}

// Program parses the TMNF rendering into a strict TMNF program with QUERY
// as the query predicate.
func (r PathRegex) Program(rstep string) (*tmnf.Program, error) {
	return tmnf.Parse(r.TMNFSource(rstep))
}

// StreamQuery renders the regex as a one-pass streaming path query
// (matched against root-path suffixes, i.e. a leading //): the class of
// queries the Treebank thread shares with stream processors. Only
// meaningful with the top-down R step.
func (r PathRegex) StreamQuery() stream.Query {
	var parts []string
	parts = append(parts, strings.Join(r.W1, "."))
	parts = append(parts, "("+strings.Join(r.W2, ".")+")*")
	parts = append(parts, strings.Join(r.W3, "."))
	return stream.Query{Regex: strings.Join(parts, "."), AnyPrefix: true}
}
