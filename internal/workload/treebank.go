package workload

import (
	"fmt"
	"math/rand"

	"arb/internal/storage"
	"arb/internal/tree"
)

// GrammarAlphabet is the constituent alphabet of the paper's Treebank
// benchmark queries (Section 6.2): noun phrase, verb phrase, prepositional
// phrase, sentence.
var GrammarAlphabet = []string{"NP", "VP", "PP", "S"}

// TreebankConfig parameterises the Treebank-like generator. The defaults
// (DefaultTreebank) reproduce the structural statistics of the paper's
// Penn Treebank database in Figure 5 at a configurable sentence count:
// 251 distinct tags and roughly 12 character nodes per element node.
type TreebankConfig struct {
	Seed      int64
	Sentences int
}

// DefaultTreebank returns the configuration whose full scale (scale = 1)
// matches the paper's node counts within a few percent.
func DefaultTreebank(scale float64) TreebankConfig {
	return TreebankConfig{Seed: 1, Sentences: int(107000 * scale)}
}

// treebank drives one generation run.
type treebank struct {
	cfg TreebankConfig
	rng *rand.Rand
	h   tree.EventHandler
	pos []string // part-of-speech tags (fillers to reach 251 tags)
	err error
}

// TreebankFeed streams a Treebank-like document: a FILE root, one parsed
// sentence per S child, sentences built from recursive NP/VP/PP/S
// constituents whose leaves are part-of-speech elements containing token
// text (one character node per character, as everywhere in the paper).
func TreebankFeed(cfg TreebankConfig, h tree.EventHandler) error {
	tb := &treebank{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), h: h}
	// 4 grammar tags + FILE + 246 POS tags = 251 tags, as in Figure 5.
	tb.pos = make([]string, 246)
	for i := range tb.pos {
		tb.pos[i] = fmt.Sprintf("T%d", i)
	}
	tb.begin("FILE")
	for i := 0; i < cfg.Sentences && tb.err == nil; i++ {
		tb.sentence()
	}
	tb.end()
	return tb.err
}

func (tb *treebank) begin(name string) {
	if tb.err == nil {
		tb.err = tb.h.Begin(name)
	}
}

func (tb *treebank) end() {
	if tb.err == nil {
		tb.err = tb.h.End()
	}
}

func (tb *treebank) text(b []byte) {
	if tb.err == nil {
		tb.err = tb.h.Text(b)
	}
}

func (tb *treebank) sentence() {
	tb.begin("S")
	tb.constituent(1)
	tb.constituent(1)
	if tb.rng.Intn(2) == 0 {
		tb.constituent(1)
	}
	tb.end()
}

// constituent expands a grammar node: with depth-damped probability it is
// an internal NP/VP/PP/S node with 2-3 children, otherwise a POS leaf
// containing a token. The shape mimics parse trees: shallow (depth <= ~10)
// and moderately branching.
func (tb *treebank) constituent(depth int) {
	if tb.err != nil {
		return
	}
	if depth >= 9 || tb.rng.Intn(10) < 3+depth {
		tb.token()
		return
	}
	tb.begin(GrammarAlphabet[tb.rng.Intn(len(GrammarAlphabet))])
	n := 2 + tb.rng.Intn(2)
	for i := 0; i < n; i++ {
		tb.constituent(depth + 1)
	}
	tb.end()
}

// token emits one part-of-speech leaf with its text. Token text lengths
// are tuned so that the overall character/element node ratio matches the
// paper's Treebank database (about 12:1 — Treebank text includes the
// full token plus annotation characters).
func (tb *treebank) token() {
	tb.begin(tb.pos[tb.rng.Intn(len(tb.pos))])
	n := 14 + tb.rng.Intn(13)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + tb.rng.Intn(26))
	}
	tb.text(b)
	tb.end()
}

// TreebankTree materialises a Treebank-like document in memory.
func TreebankTree(cfg TreebankConfig) (*tree.Tree, error) {
	b := tree.NewBuilder(nil)
	if err := TreebankFeed(cfg, b); err != nil {
		return nil, err
	}
	return b.Tree()
}

// CreateTreebankDB builds a Treebank-like .arb database with the paper's
// two-pass creation scheme.
func CreateTreebankDB(base string, cfg TreebankConfig) (*storage.DB, *storage.CreateStats, error) {
	return storage.Create(base, func(ew *storage.EventWriter) error {
		return TreebankFeed(cfg, ew)
	}, storage.CreateOpts{})
}
