package workload

import (
	"math/rand"

	"arb/internal/storage"
	"arb/internal/tree"
)

// SwissprotConfig parameterises the Swissprot-like generator: protein
// entries with descriptive fields, feature annotations and an amino-acid
// sequence. The full-scale paper database has about 10.9M element nodes,
// 296M character nodes (a 27:1 character ratio — protein records are
// text-heavy) and 48 tags.
type SwissprotConfig struct {
	Seed    int64
	Entries int
}

// DefaultSwissprot returns a configuration whose full scale matches the
// paper's Figure 5 node counts within a few percent.
func DefaultSwissprot(scale float64) SwissprotConfig {
	return SwissprotConfig{Seed: 2, Entries: int(352000 * scale)}
}

// The 48 tags of the Swissprot-like schema (Figure 5 column 3).
var sprotTags = struct {
	root, entry string
	fields      []string // single text field per entry, always present
	refFields   []string // citation block
	featKinds   []string // feature table kinds
}{
	root:  "sprot",
	entry: "entry",
	fields: []string{
		"id", "accession", "created", "modified", "description",
		"geneName", "organism", "lineage", "keyword",
	},
	refFields: []string{
		"reference", "authors", "title", "journal", "volume", "pages",
		"year", "medline",
	},
	featKinds: []string{
		"feature", "ftType", "ftDesc", "ftFrom", "ftTo",
		"domain", "binding", "transmem", "signal", "chain", "conflict",
		"variant", "mutagen", "carbohyd", "disulfid", "metal", "actSite",
		"site", "helix", "strand", "turn", "repeat", "zincFing",
		"nonTer", "propep", "transit",
	},
}

// sequenceTags: "sequence" + amino text; plus "comment" and "db" below.
type sprot struct {
	cfg SwissprotConfig
	rng *rand.Rand
	h   tree.EventHandler
	err error
}

// SwissprotFeed streams a Swissprot-like document.
func SwissprotFeed(cfg SwissprotConfig, h tree.EventHandler) error {
	s := &sprot{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), h: h}
	s.begin(sprotTags.root)
	for i := 0; i < cfg.Entries && s.err == nil; i++ {
		s.entry()
	}
	s.end()
	return s.err
}

func (s *sprot) begin(name string) {
	if s.err == nil {
		s.err = s.h.Begin(name)
	}
}

func (s *sprot) end() {
	if s.err == nil {
		s.err = s.h.End()
	}
}

func (s *sprot) textN(n int, letters string) {
	if s.err != nil {
		return
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[s.rng.Intn(len(letters))]
	}
	s.err = s.h.Text(b)
}

func (s *sprot) field(tag string, textLen int) {
	s.begin(tag)
	s.textN(textLen, "abcdefghijklmnopqrstuvwxyz ")
	s.end()
}

func (s *sprot) entry() {
	s.begin(sprotTags.entry)
	for _, f := range sprotTags.fields {
		s.field(f, 10+s.rng.Intn(20))
	}
	// One citation block.
	s.begin(sprotTags.refFields[0])
	for _, f := range sprotTags.refFields[1:] {
		s.field(f, 8+s.rng.Intn(16))
	}
	s.end()
	// A couple of comments and database cross-references.
	s.field("comment", 40+s.rng.Intn(80))
	s.field("db", 12+s.rng.Intn(8))
	// Feature table: a handful of annotations drawn from the kind pool.
	nf := 3 + s.rng.Intn(5)
	for i := 0; i < nf; i++ {
		s.begin(sprotTags.featKinds[0])
		s.field(sprotTags.featKinds[1+s.rng.Intn(len(sprotTags.featKinds)-1)], 6+s.rng.Intn(10))
		s.end()
	}
	// The protein sequence: the dominant text mass.
	s.begin("sequence")
	s.textN(300+s.rng.Intn(220), "ACDEFGHIKLMNPQRSTVWY")
	s.end()
	s.end()
}

// SwissprotTree materialises a Swissprot-like document in memory.
func SwissprotTree(cfg SwissprotConfig) (*tree.Tree, error) {
	b := tree.NewBuilder(nil)
	if err := SwissprotFeed(cfg, b); err != nil {
		return nil, err
	}
	return b.Tree()
}

// CreateSwissprotDB builds a Swissprot-like .arb database with the
// paper's two-pass creation scheme.
func CreateSwissprotDB(base string, cfg SwissprotConfig) (*storage.DB, *storage.CreateStats, error) {
	return storage.Create(base, func(ew *storage.EventWriter) error {
		return SwissprotFeed(cfg, ew)
	}, storage.CreateOpts{})
}
