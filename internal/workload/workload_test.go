package workload

import (
	"context"
	"math/rand"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"arb/internal/core"
	"arb/internal/storage"
	"arb/internal/tree"
)

func TestSequence(t *testing.T) {
	seq := Sequence(7, 1023)
	if len(seq) != 1023 {
		t.Fatalf("length %d, want 1023", len(seq))
	}
	for i, c := range seq {
		if c != 'A' && c != 'C' && c != 'G' && c != 'T' {
			t.Fatalf("byte %q at %d", c, i)
		}
	}
	if string(Sequence(7, 1023)) != string(seq) {
		t.Fatal("Sequence is not deterministic")
	}
	if string(Sequence(8, 1023)) == string(seq) {
		t.Fatal("different seeds gave the same sequence")
	}
}

func TestFlatTreeShape(t *testing.T) {
	seq := []byte("ACGT")
	tr := FlatTree(seq)
	if tr.Len() != 5 {
		t.Fatalf("got %d nodes, want 5", tr.Len())
	}
	if err := tr.CheckPreorder(); err != nil {
		t.Fatal(err)
	}
	// Root, then the symbols along a NextSibling chain.
	v := tr.First(0)
	for i := range seq {
		name, _ := tr.Names().TagName(tr.Label(v))
		if name != string(seq[i]) {
			t.Fatalf("symbol %d is %s, want %c", i, name, seq[i])
		}
		v = tr.Second(v)
	}
	if v != tree.None {
		t.Fatal("trailing nodes after the sequence")
	}
}

func TestInfixTreeShape(t *testing.T) {
	// Figure 4(b): sequence of length 2^3-1 gives a complete binary tree
	// of depth 3 below the root.
	seq := []byte("ACGTACG")
	tr := InfixTree(seq)
	if tr.Len() != 8 {
		t.Fatalf("got %d nodes, want 8", tr.Len())
	}
	if err := tr.CheckPreorder(); err != nil {
		t.Fatal(err)
	}
	// In-order traversal of the infix tree spells the sequence.
	var inorder []byte
	var walk func(v tree.NodeID)
	walk = func(v tree.NodeID) {
		if v == tree.None {
			return
		}
		walk(tr.First(v))
		name, _ := tr.Names().TagName(tr.Label(v))
		inorder = append(inorder, name[0])
		walk(tr.Second(v))
	}
	walk(tr.First(0))
	if string(inorder) != string(seq) {
		t.Fatalf("in-order %q, want %q", inorder, seq)
	}
}

func TestInfixTreeComplete(t *testing.T) {
	seq := Sequence(1, 1<<6-1) // depth 6
	tr := InfixTree(seq)
	// Every non-leaf level is full: node count 2^6-1+1.
	if tr.Len() != 1<<6 {
		t.Fatalf("got %d nodes, want %d", tr.Len(), 1<<6)
	}
	var depth func(v tree.NodeID) int
	depth = func(v tree.NodeID) int {
		if v == tree.None {
			return 0
		}
		d1, d2 := depth(tr.First(v)), depth(tr.Second(v))
		if d1 != d2 {
			t.Fatalf("unbalanced at node %d: %d vs %d", v, d1, d2)
		}
		return d1 + 1
	}
	if d := depth(tr.First(0)); d != 6 {
		t.Fatalf("depth %d, want 6", d)
	}
}

func TestCreateFlatAndInfixDBMatchTrees(t *testing.T) {
	seq := Sequence(3, 127)
	dir := t.TempDir()
	for _, c := range []struct {
		name   string
		create func(base string, seq []byte) (*storage.DB, error)
		build  func(seq []byte) *tree.Tree
	}{
		{"flat", CreateFlatDB, FlatTree},
		{"infix", CreateInfixDB, InfixTree},
	} {
		db, err := c.create(filepath.Join(dir, c.name), seq)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got, err := db.ReadTree(context.Background())
		db.Close()
		if err != nil {
			t.Fatalf("%s: ReadTree: %v", c.name, err)
		}
		want := c.build(seq)
		if got.String() != want.String() {
			t.Fatalf("%s: streamed DB differs from in-memory tree", c.name)
		}
	}
}

func TestRandomPathRegex(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for size := 3; size <= 15; size++ {
		for i := 0; i < 50; i++ {
			r := RandomPathRegex(rng, size, ACGTAlphabet)
			if r.Size() != size {
				t.Fatalf("size %d, want %d", r.Size(), size)
			}
			if len(r.W1) == 0 || len(r.W2) == 0 || len(r.W3) == 0 {
				t.Fatalf("empty word in %v", r)
			}
		}
	}
}

func TestTMNFSourcePaperExample(t *testing.T) {
	r := PathRegex{W1: []string{"S", "VP"}, W2: []string{"NP", "PP"}, W3: []string{"NP"}}
	want := "QUERY :- V.Label[S].FirstChild.NextSibling*.Label[VP].(FirstChild.NextSibling*.Label[NP].FirstChild.NextSibling*.Label[PP])*.FirstChild.NextSibling*.Label[NP];"
	if got := r.TMNFSource(RTreebank); got != want {
		t.Fatalf("got  %s\nwant %s", got, want)
	}
	if r.String() != "S.VP.(NP.PP)*.NP" {
		t.Fatalf("String() = %s", r.String())
	}
}

// evalCount runs the regex program over a tree with the two-phase engine
// and returns the number of selected nodes.
func evalCount(t *testing.T, tr *tree.Tree, r PathRegex, rstep string) int64 {
	t.Helper()
	prog, err := r.Program(rstep)
	if err != nil {
		t.Fatalf("Program(%q): %v", rstep, err)
	}
	c, err := core.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(c, tr.Names())
	res, err := e.Run(tr, core.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Count(prog.Queries()[0])
}

// oracleEndpoints counts the distinct endpoint positions of matching
// backward walks directly on the sequence: position e is selected iff
// reverse(w1 w2^k w3) occurs in seq starting at e, for some k >= 0.
func oracleEndpoints(seq []byte, r PathRegex) int64 {
	rev := func(w []string) string {
		var b strings.Builder
		for i := len(w) - 1; i >= 0; i-- {
			b.WriteString(w[i])
		}
		return b.String()
	}
	re := regexp.MustCompile("^" + rev(r.W3) + "(" + rev(r.W2) + ")*" + rev(r.W1))
	var count int64
	for e := 0; e < len(seq); e++ {
		if re.Match(seq[e:]) {
			count++
		}
	}
	return count
}

// TestFlatInfixSelectedCountsAgree is the paper's cross-check: the same
// regexes on ACGT-flat (bottom-up, via invNextSibling) and ACGT-infix
// (sideways caterpillar) select the same number of nodes, both equal to
// direct string matching on the underlying sequence.
func TestFlatInfixSelectedCountsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	seq := Sequence(5, 1<<9-1)
	flat := FlatTree(seq)
	infix := InfixTree(seq)
	for size := 3; size <= 8; size++ {
		for i := 0; i < 5; i++ {
			r := RandomPathRegex(rng, size, ACGTAlphabet)
			want := oracleEndpoints(seq, r)
			if got := evalCount(t, flat, r, RFlat); got != want {
				t.Fatalf("flat: regex %s: %d selected, oracle %d", r, got, want)
			}
			if got := evalCount(t, infix, r, RInfix); got != want {
				t.Fatalf("infix: regex %s: %d selected, oracle %d", r, got, want)
			}
		}
	}
}

func TestTreebankStats(t *testing.T) {
	cfg := TreebankConfig{Seed: 1, Sentences: 500}
	tr, err := TreebankTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	elems, chars := nodeCounts(tr)
	if ratio := float64(chars) / float64(elems); ratio < 9 || ratio > 15 {
		t.Fatalf("char/elem ratio %.2f outside the Treebank band [9, 15]", ratio)
	}
	if n := tr.Names().Len(); n != 251 {
		t.Fatalf("%d tags, want 251 (as in Figure 5)", n)
	}
	if d := tree.DocDepth(tr); d > 12 {
		t.Fatalf("document depth %d, want shallow parse trees", d)
	}
	// Determinism.
	tr2, err := TreebankTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != tr2.Len() {
		t.Fatal("TreebankTree is not deterministic")
	}
}

func TestSwissprotStats(t *testing.T) {
	cfg := SwissprotConfig{Seed: 2, Entries: 300}
	tr, err := SwissprotTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	elems, chars := nodeCounts(tr)
	if ratio := float64(chars) / float64(elems); ratio < 22 || ratio > 33 {
		t.Fatalf("char/elem ratio %.2f outside the Swissprot band [22, 33]", ratio)
	}
	if n := tr.Names().Len(); n != 48 {
		t.Fatalf("%d tags, want 48 (as in Figure 5)", n)
	}
}

func nodeCounts(t *tree.Tree) (elems, chars int) {
	for v := 0; v < t.Len(); v++ {
		if t.Label(tree.NodeID(v)).IsChar() {
			chars++
		} else {
			elems++
		}
	}
	return
}

func TestCreateTreebankDBStats(t *testing.T) {
	base := filepath.Join(t.TempDir(), "tb")
	db, stats, err := CreateTreebankDB(base, TreebankConfig{Seed: 1, Sentences: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	n := stats.ElemNodes + stats.CharNodes
	if db.N != n {
		t.Fatalf("db has %d nodes, stats say %d", db.N, n)
	}
	// Figure 5 invariants: .arb = 2 bytes/node, .evt = 2x .arb.
	if stats.ArbBytes != 2*n || stats.EvtBytes != 4*n {
		t.Fatalf("sizes: arb=%d evt=%d for %d nodes", stats.ArbBytes, stats.EvtBytes, n)
	}
	// The .lab file records only tags that actually occur; at 100
	// sentences a few of the 246 POS fillers may not have been drawn.
	if stats.Tags < 240 || stats.Tags > 251 {
		t.Fatalf("%d tags, want close to 251", stats.Tags)
	}
}
