// Package workload generates the datasets and benchmark queries of the
// paper's experimental evaluation (Section 6): the ACGT synthetic DNA
// sequence in its flat and infix tree versions, Treebank-like constituency
// trees, Swissprot-like protein records, and the random regular path
// queries of Section 6.2 in their three thread variants (top-down on
// Treebank, bottom-up on ACGT-flat, sideways-caterpillar on ACGT-infix).
//
// Penn Treebank and Swissprot themselves cannot be shipped (one is
// LDC-licensed, the other a one-off XML-ization), so the generators here
// produce synthetic documents matching the paper's structural statistics —
// tag counts, element/character node ratios, tree shapes — which is what
// the benchmarked code paths exercise; the benchmark queries are random
// path expressions over a four-tag grammar alphabet in the paper too.
package workload

import (
	"math/rand"

	"arb/internal/storage"
	"arb/internal/tree"
)

// ACGTAlphabet is the DNA alphabet of the paper's bogus sequence database.
var ACGTAlphabet = []string{"A", "C", "G", "T"}

// SequenceRoot is the tag of the root element above a sequence tree. (The
// paper labels its roots within the 4-letter alphabet; we use a separate
// tag so that walks cannot accidentally start at the root, at the price
// of reporting 5 tags instead of 4 in the Figure 5 reproduction.)
const SequenceRoot = "seq"

// Sequence generates a reproducible random DNA sequence of the given
// length over {A, C, G, T}. The paper uses length 2^25 - 1.
func Sequence(seed int64, length int) []byte {
	rng := rand.New(rand.NewSource(seed))
	seq := make([]byte, length)
	const acgt = "ACGT"
	for i := range seq {
		seq[i] = acgt[rng.Intn(4)]
	}
	return seq
}

// acgtNames returns a name table with the root and the four symbol tags
// interned, plus the labels for A, C, G, T in symbol order.
func acgtNames() (*tree.Names, tree.Label, [4]tree.Label) {
	ns := tree.NewNames()
	root := ns.MustIntern(SequenceRoot)
	var syms [4]tree.Label
	for i, s := range ACGTAlphabet {
		syms[i] = ns.MustIntern(s)
	}
	return ns, root, syms
}

func symLabel(syms [4]tree.Label, c byte) tree.Label {
	switch c {
	case 'A':
		return syms[0]
	case 'C':
		return syms[1]
	case 'G':
		return syms[2]
	case 'T':
		return syms[3]
	}
	panic("workload: symbol outside ACGT")
}

// FlatTree builds the ACGT-flat document in memory: a root element with
// one child element per symbol, in sequence order (Figure 4(a)). In the
// first-child/next-sibling encoding this is an extremely right-deep
// binary tree: the children form one long NextSibling chain.
func FlatTree(seq []byte) *tree.Tree {
	ns, root, syms := acgtNames()
	t := tree.New(ns)
	r := t.AddNode(root)
	prev := tree.None
	for _, c := range seq {
		n := t.AddNode(symLabel(syms, c))
		if prev == tree.None {
			t.SetFirst(r, n)
		} else {
			t.SetSecond(prev, n)
		}
		prev = n
	}
	return t
}

// CreateFlatDB streams the ACGT-flat database directly to disk in its
// binary encoding, without materialising the tree: the preorder of the
// FCNS encoding is root, then the symbols in sequence order.
func CreateFlatDB(base string, seq []byte) (*storage.DB, error) {
	ns, root, syms := acgtNames()
	return storage.CreateBinary(base, ns, func(emit storage.RecordSink) error {
		if err := emit(root, len(seq) > 0, false); err != nil {
			return err
		}
		for i, c := range seq {
			if err := emit(symLabel(syms, c), false, i+1 < len(seq)); err != nil {
				return err
			}
		}
		return nil
	})
}

// InfixTree builds the ACGT-infix document in memory: below a separate
// root node, the sequence as a binary infix tree (Figure 4(b)) — the
// middle symbol at the top, the left half as the first subtree, the right
// half as the second. For lengths 2^k - 1 the tree is complete with depth
// k. This uses the paper's alternative binary tree model: first/second
// children are the infix tree's own left/right children.
func InfixTree(seq []byte) *tree.Tree {
	ns, root, syms := acgtNames()
	t := tree.New(ns)
	r := t.AddNode(root)
	if len(seq) == 0 {
		return t
	}
	var build func(lo, hi int) tree.NodeID
	build = func(lo, hi int) tree.NodeID {
		mid := (lo + hi) / 2
		v := t.AddNode(symLabel(syms, seq[mid]))
		if lo < mid {
			t.SetFirst(v, build(lo, mid-1))
		}
		if mid < hi {
			t.SetSecond(v, build(mid+1, hi))
		}
		return v
	}
	t.SetFirst(r, build(0, len(seq)-1))
	return t
}

// CreateInfixDB streams the ACGT-infix database directly to disk: the
// preorder of the infix tree is emitted with an explicit (lo, hi) stack,
// so memory stays logarithmic in the sequence length.
func CreateInfixDB(base string, seq []byte) (*storage.DB, error) {
	ns, root, syms := acgtNames()
	return storage.CreateBinary(base, ns, func(emit storage.RecordSink) error {
		if err := emit(root, len(seq) > 0, false); err != nil {
			return err
		}
		if len(seq) == 0 {
			return nil
		}
		type span struct{ lo, hi int }
		stack := []span{{0, len(seq) - 1}}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			mid := (s.lo + s.hi) / 2
			hasFirst := s.lo < mid
			hasSecond := mid < s.hi
			if err := emit(symLabel(syms, seq[mid]), hasFirst, hasSecond); err != nil {
				return err
			}
			// Preorder: first subtree before second, so push second first.
			if hasSecond {
				stack = append(stack, span{mid + 1, s.hi})
			}
			if hasFirst {
				stack = append(stack, span{s.lo, mid - 1})
			}
		}
		return nil
	})
}
