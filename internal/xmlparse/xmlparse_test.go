package xmlparse

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"arb/internal/storage"
	"arb/internal/tree"
)

func mustParseTree(t *testing.T, src string, opts Opts) *tree.Tree {
	t.Helper()
	tr, err := ParseTree(strings.NewReader(src), opts)
	if err != nil {
		t.Fatalf("ParseTree(%q): %v", src, err)
	}
	return tr
}

func TestParsePaperExample(t *testing.T) {
	// Example 4.5's three-node document.
	tr := mustParseTree(t, `<a> <a> <a/> </a> </a>`, Opts{DropWhitespaceText: true})
	if tr.Len() != 3 {
		t.Fatalf("got %d nodes, want 3", tr.Len())
	}
	a, _ := tr.Names().Lookup("a")
	for v := 0; v < 3; v++ {
		if tr.Label(tree.NodeID(v)) != a {
			t.Fatalf("node %d label %v, want a", v, tr.Label(tree.NodeID(v)))
		}
	}
	// v0 -first-> v1 -first-> v2; no second children.
	if tr.First(0) != 1 || tr.First(1) != 2 || tr.HasSecond(0) || tr.HasSecond(1) || tr.HasFirst(2) {
		t.Fatalf("wrong shape: first=%v/%v", tr.First(0), tr.First(1))
	}
}

func TestParseCharactersAsNodes(t *testing.T) {
	tr := mustParseTree(t, `<g><seq>ACG</seq></g>`, Opts{})
	// g, seq, 'A', 'C', 'G'
	if tr.Len() != 5 {
		t.Fatalf("got %d nodes, want 5", tr.Len())
	}
	seq := tr.First(tr.First(0))
	var got []byte
	for v := seq; v != tree.None; v = tr.Second(v) {
		l := tr.Label(v)
		if !l.IsChar() {
			t.Fatalf("node %d is not a character", v)
		}
		got = append(got, l.Char())
	}
	if string(got) != "ACG" {
		t.Fatalf("text %q, want ACG", got)
	}
}

func TestParseEntitiesAndCDATA(t *testing.T) {
	tr := mustParseTree(t, `<a>&lt;x&gt;<![CDATA[&]]></a>`, Opts{})
	var got []byte
	for v := tr.First(0); v != tree.None; v = tr.Second(v) {
		got = append(got, tr.Label(v).Char())
	}
	if string(got) != "<x>&" {
		t.Fatalf("text %q, want <x>&", got)
	}
}

func TestParseSkipsNonTreeNodes(t *testing.T) {
	src := `<?xml version="1.0"?><!-- c --><r><!-- inner --><?pi data?><a/></r>`
	tr := mustParseTree(t, src, Opts{})
	if tr.Len() != 2 {
		t.Fatalf("got %d nodes, want 2 (r, a)", tr.Len())
	}
}

func TestParseAttrsOption(t *testing.T) {
	src := `<r id="7"><a x="y"/></r>`
	tr := mustParseTree(t, src, Opts{IncludeAttrs: true})
	// r, @id, '7', a, @x, 'y'
	if tr.Len() != 6 {
		t.Fatalf("got %d nodes, want 6", tr.Len())
	}
	if _, ok := tr.Names().Lookup("@id"); !ok {
		t.Fatal("@id label missing")
	}
	// Default drops attributes.
	tr = mustParseTree(t, src, Opts{})
	if tr.Len() != 2 {
		t.Fatalf("got %d nodes, want 2", tr.Len())
	}
}

func TestParseMalformed(t *testing.T) {
	for _, src := range []string{
		`<a><b></a></b>`,
		`<a>`,
		`text only`,
		``,
	} {
		if _, err := ParseTree(strings.NewReader(src), Opts{}); err == nil {
			t.Errorf("ParseTree(%q) succeeded, want error", src)
		}
	}
}

func TestParseDeepDocument(t *testing.T) {
	var b strings.Builder
	const depth = 2000
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	tr := mustParseTree(t, b.String(), Opts{})
	if tr.Len() != depth {
		t.Fatalf("got %d nodes, want %d", tr.Len(), depth)
	}
}

func TestCreateDBRoundTrip(t *testing.T) {
	src := `<doc><p>hi</p><p>yo</p></doc>`
	base := filepath.Join(t.TempDir(), "db")
	db, stats, err := CreateDB(base, strings.NewReader(src), Opts{}, storage.CreateOpts{})
	if err != nil {
		t.Fatalf("CreateDB: %v", err)
	}
	defer db.Close()
	if stats.ElemNodes != 3 || stats.CharNodes != 4 {
		t.Fatalf("stats: %d elements, %d chars; want 3, 4", stats.ElemNodes, stats.CharNodes)
	}
	got, err := db.ReadTree(context.Background())
	if err != nil {
		t.Fatalf("ReadTree: %v", err)
	}
	want := mustParseTree(t, src, Opts{})
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, want)
	}
}
