package xmlparse

import (
	"bytes"
	"strings"
	"testing"
)

// benchDoc builds a ~1 MB XML document.
func benchDoc() []byte {
	var b bytes.Buffer
	b.WriteString("<root>")
	for i := 0; i < 10000; i++ {
		b.WriteString("<item><name>gadget</name><desc>some text content here</desc></item>")
	}
	b.WriteString("</root>")
	return b.Bytes()
}

type nullHandler struct{}

func (nullHandler) Begin(string) error { return nil }
func (nullHandler) Text([]byte) error  { return nil }
func (nullHandler) End() error         { return nil }

// BenchmarkParse measures the SAX pass alone (the first half of
// database creation).
func BenchmarkParse(b *testing.B) {
	doc := benchDoc()
	b.SetBytes(int64(len(doc)))
	for i := 0; i < b.N; i++ {
		if err := Parse(bytes.NewReader(doc), nullHandler{}, Opts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseTree includes building the in-memory binary tree.
func BenchmarkParseTree(b *testing.B) {
	doc := string(benchDoc())
	b.SetBytes(int64(len(doc)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseTree(strings.NewReader(doc), Opts{}); err != nil {
			b.Fatal(err)
		}
	}
}
