// Package xmlparse turns XML documents into the event streams the rest of
// the repository consumes: begin-element / text / end-element, with text
// expanded to one node per character downstream (paper Section 2.1).
//
// The parser is a thin streaming layer over encoding/xml's tokenizer — the
// SAX parsing pass of the paper's database-creation scheme. It never
// materialises the document; memory use is bounded by the document depth
// (inside encoding/xml's nesting check) plus a token buffer.
package xmlparse

import (
	"encoding/xml"
	"fmt"
	"io"

	"arb/internal/storage"
	"arb/internal/tree"
)

// Handler consumes a document event stream. Both *tree.Builder (in-memory
// trees) and *storage.EventWriter (database creation) satisfy it.
type Handler interface {
	// Begin opens an element with the given tag name.
	Begin(name string) error
	// Text adds one character node per byte of s, in order.
	Text(s []byte) error
	// End closes the most recently opened element.
	End() error
}

var (
	_ Handler = (*tree.Builder)(nil)
	_ Handler = (*storage.EventWriter)(nil)
)

// Opts configures parsing.
type Opts struct {
	// IncludeAttrs models each attribute as a child element named
	// "@<attr-name>" whose content is the attribute value, inserted
	// before the element's regular children. The paper's datasets contain
	// element and character nodes only, so the default is off.
	IncludeAttrs bool
	// DropWhitespaceText discards text runs that consist entirely of XML
	// whitespace (pretty-printing indentation). The paper keeps all text;
	// generators that emit indented XML set this to compare against
	// non-indented equivalents.
	DropWhitespaceText bool
}

// Parse streams the XML document from r into h. Comments, processing
// instructions and directives are skipped; CDATA arrives as ordinary text.
// It returns an error for malformed XML (encoding/xml enforces matched
// tags) or when the handler rejects an event.
func Parse(r io.Reader, h Handler, opts Opts) error {
	dec := xml.NewDecoder(r)
	// The paper's documents are trees of elements and text; entity
	// resolution beyond the predefined five is out of scope.
	dec.Strict = true
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			if depth != 0 {
				return fmt.Errorf("xmlparse: unexpected EOF with %d open elements", depth)
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("xmlparse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if err := h.Begin(t.Name.Local); err != nil {
				return err
			}
			depth++
			if opts.IncludeAttrs {
				for _, a := range t.Attr {
					if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
						continue
					}
					if err := h.Begin("@" + a.Name.Local); err != nil {
						return err
					}
					if err := h.Text([]byte(a.Value)); err != nil {
						return err
					}
					if err := h.End(); err != nil {
						return err
					}
				}
			}
		case xml.EndElement:
			if err := h.End(); err != nil {
				return err
			}
			depth--
		case xml.CharData:
			if depth == 0 {
				// Whitespace between the prolog and the root element.
				continue
			}
			if opts.DropWhitespaceText && isXMLSpace(t) {
				continue
			}
			if len(t) > 0 {
				if err := h.Text(t); err != nil {
					return err
				}
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Not part of the tree model.
		}
	}
}

func isXMLSpace(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return false
		}
	}
	return true
}

// ParseTree parses the document into an in-memory binary tree.
func ParseTree(r io.Reader, opts Opts) (*tree.Tree, error) {
	b := tree.NewBuilder(nil)
	if err := Parse(r, b, opts); err != nil {
		return nil, err
	}
	return b.Tree()
}

// CreateDB builds a .arb database under base from the XML document in r,
// using the paper's two-pass creation scheme (Section 5): this function is
// the SAX pass writing the event file; storage.Create performs the
// backward pass producing the .arb file.
func CreateDB(base string, r io.Reader, opts Opts, copts storage.CreateOpts) (*storage.DB, *storage.CreateStats, error) {
	return storage.Create(base, func(ew *storage.EventWriter) error {
		return Parse(r, ew, opts)
	}, copts)
}
