package arb_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"arb"
)

// gateWriter blocks the first Write until released, flagging when the
// write began — a probe that pins an Exec mid-execution.
type gateWriter struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (w *gateWriter) Write(p []byte) (int, error) {
	w.once.Do(func() {
		close(w.started)
		<-w.release
	})
	return len(p), nil
}

// TestExecReentrantOverlap is the regression test for the serialised
// PreparedQuery: two Execs of ONE handle must be able to run at the same
// time. The first execution is pinned mid-run (its MarkTo writer blocks
// on a gate); the second must complete while the first is still inside
// Exec. Under the old per-handle mutex the second Exec queued behind the
// first and this test timed out.
func TestExecReentrantOverlap(t *testing.T) {
	tr := buildCatalog(t, 300)
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for name, sess := range map[string]*arb.Session{
		"memory": arb.NewSession(tr),
		"disk":   arb.NewDBSession(db),
	} {
		t.Run(name, func(t *testing.T) {
			prog, err := arb.ParseProgram(`QUERY :- Label[flag];`)
			if err != nil {
				t.Fatal(err)
			}
			pq, err := sess.Prepare(prog)
			if err != nil {
				t.Fatal(err)
			}

			gate := &gateWriter{started: make(chan struct{}), release: make(chan struct{})}
			pinned := make(chan error, 1)
			go func() {
				_, _, err := pq.Exec(context.Background(), arb.ExecOpts{MarkTo: gate})
				pinned <- err
			}()
			select {
			case <-gate.started:
			case <-time.After(10 * time.Second):
				t.Fatal("pinned execution never reached its writer")
			}

			// The handle is mid-Exec; a second Exec of the SAME handle
			// must still run to completion.
			overlapped := make(chan error, 1)
			go func() {
				n, err := pq.Count(context.Background())
				if err == nil && n != 200 {
					err = fmt.Errorf("overlapped Exec selected %d nodes, want 200", n)
				}
				overlapped <- err
			}()
			select {
			case err := <-overlapped:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("second Exec of the handle did not overlap the pinned one (handle serialises executions)")
			}

			close(gate.release)
			if err := <-pinned; err != nil {
				t.Fatalf("pinned execution failed: %v", err)
			}
		})
	}
	assertOnlyDatabaseFiles(t, dir)
}

// TestKeepStatesOverlap is the regression test for the per-run state-file
// names: two KeepStates disk Execs of ONE handle must overlap, each
// keeping its own uniquely named state file. The first execution is
// pinned mid-run (its MarkTo writer blocks on a gate); the second must
// complete — KeepStates and all — while the first is still inside Exec.
// Under the old fixed base.sta name the handle serialised its keepers
// and this test timed out.
func TestKeepStatesOverlap(t *testing.T) {
	tr := buildCatalog(t, 300)
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sess := arb.NewDBSession(db)

	prog, err := arb.ParseProgram(`QUERY :- Label[flag];`)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := sess.Prepare(prog)
	if err != nil {
		t.Fatal(err)
	}

	gate := &gateWriter{started: make(chan struct{}), release: make(chan struct{})}
	type outcome struct {
		res *arb.Result
		err error
	}
	pinned := make(chan outcome, 1)
	go func() {
		res, _, err := pq.Exec(context.Background(), arb.ExecOpts{KeepStates: true, MarkTo: gate})
		pinned <- outcome{res, err}
	}()
	select {
	case <-gate.started:
	case <-time.After(10 * time.Second):
		t.Fatal("pinned execution never reached its writer")
	}

	// The handle is mid-Exec with a kept state file in flight; a second
	// KeepStates Exec of the SAME handle must still run to completion.
	overlapped := make(chan outcome, 1)
	go func() {
		res, _, err := pq.Exec(context.Background(), arb.ExecOpts{KeepStates: true})
		overlapped <- outcome{res, err}
	}()
	var second outcome
	select {
	case second = <-overlapped:
		if second.err != nil {
			t.Fatal(second.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second KeepStates Exec did not overlap the pinned one (handle serialises keepers)")
	}

	close(gate.release)
	first := <-pinned
	if first.err != nil {
		t.Fatalf("pinned execution failed: %v", first.err)
	}

	// Each run kept its own state file: distinct names, both present,
	// both full-size.
	if first.res.StateFile == "" || second.res.StateFile == "" {
		t.Fatalf("kept runs reported state files %q and %q", first.res.StateFile, second.res.StateFile)
	}
	if first.res.StateFile == second.res.StateFile {
		t.Fatalf("both runs kept the same state file %s", first.res.StateFile)
	}
	for _, p := range []string{first.res.StateFile, second.res.StateFile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("kept state file missing: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("kept state file %s is empty", p)
		}
		os.Remove(p)
	}
	assertOnlyDatabaseFiles(t, dir)
}

// TestConcurrentSessionStress hammers one session pair (memory and disk
// over the same document) with goroutines running a mixed workload —
// scalar TMNF, multi-pass XPath, PrepareBatch batches and BatchOf
// batches over the shared hot handles, sequential and parallel — and
// requires every result to be bit-identical to the sequential baseline.
// Run under -race this is the concurrency gate for the reentrant
// execution layer.
func TestConcurrentSessionStress(t *testing.T) {
	tr := buildCatalog(t, 900)
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	prog, err := arb.ParseProgram(`QUERY :- Label[flag];`)
	if err != nil {
		t.Fatal(err)
	}
	xq, err := arb.ParseXPath(`//item[not(flag)]/name`)
	if err != nil {
		t.Fatal(err)
	}

	type backend struct {
		name string
		sess *arb.Session
		pq   *arb.PreparedQuery // hot scalar handle, shared by all goroutines
		xpq  *arb.PreparedQuery // hot multi-pass handle
		pb   *arb.PreparedBatch // hot batch over the two handles' automata
	}
	var backends []*backend
	for name, sess := range map[string]*arb.Session{
		"memory": arb.NewSession(tr),
		"disk":   arb.NewDBSession(db),
	} {
		b := &backend{name: name, sess: sess}
		if b.pq, err = sess.Prepare(prog); err != nil {
			t.Fatal(err)
		}
		if b.xpq, err = sess.PrepareXPath(xq); err != nil {
			t.Fatal(err)
		}
		if b.pb, err = sess.BatchOf(b.pq, b.xpq); err != nil {
			t.Fatal(err)
		}
		backends = append(backends, b)
	}

	// Sequential baselines, computed before any concurrency.
	wantScalar := selectedOf(t, backends[0].pq, arb.ExecOpts{})
	wantXPath := selectedOf(t, backends[0].xpq, arb.ExecOpts{})
	if len(wantScalar) != 600 || len(wantXPath) != 300 {
		t.Fatalf("baseline selected %d/%d nodes, want 600/300", len(wantScalar), len(wantXPath))
	}
	same := func(got, want []arb.NodeID) error {
		if len(got) != len(want) {
			return fmt.Errorf("selected %d nodes, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("selected node %d is %d, want %d", i, got[i], want[i])
			}
		}
		return nil
	}

	const goroutines = 16
	const iters = 6
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				b := backends[rng.Intn(len(backends))]
				workers := 1
				if rng.Intn(2) == 1 {
					workers = 3
				}
				opts := arb.ExecOpts{Workers: workers, NoPrune: rng.Intn(2) == 1}
				var err error
				switch rng.Intn(3) {
				case 0: // scalar TMNF through the shared hot handle
					var res *arb.Result
					if res, _, err = b.pq.Exec(context.Background(), opts); err == nil {
						err = same(res.Selected(b.pq.Queries()[0]), wantScalar)
					}
				case 1: // multi-pass XPath through the shared hot handle
					var res *arb.Result
					if res, _, err = b.xpq.Exec(context.Background(), opts); err == nil {
						err = same(res.Selected(b.xpq.Queries()[0]), wantXPath)
					}
				case 2: // shared-scan batch over the same engines
					var res []*arb.Result
					if res, _, err = b.pb.Exec(context.Background(), opts); err == nil {
						if err = same(res[0].Selected(b.pb.Queries(0)[0]), wantScalar); err == nil {
							err = same(res[1].Selected(b.pb.Queries(1)[0]), wantXPath)
						}
					}
				}
				if err != nil {
					errc <- fmt.Errorf("%s goroutine %d iter %d: %w", b.name, g, i, err)
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
	assertOnlyDatabaseFiles(t, dir)
}
