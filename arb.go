// Package arb is a Go implementation of the Arb system from Christoph
// Koch's VLDB 2003 paper "Efficient Processing of Expressive
// Node-Selecting Queries on XML Data in Secondary Storage: A Tree
// Automata-based Approach".
//
// Arb evaluates node-selecting queries on XML trees with expressive power
// equal to the unary MSO queries — all queries answerable with bounded
// memory — in two linear passes over the data, with main memory
// independent of the data size (apart from a stack bounded by the
// document depth). Queries are written in TMNF (a four-template monadic
// datalog, extended with caterpillar path expressions) or in Core XPath,
// and are compiled into a pair of deterministic tree automata whose
// states are residual propositional Horn programs, computed lazily.
//
// # Quick start
//
// The repository is the single Go module "arb"; import the root package
// as `import "arb"` (the command-line tools live under cmd/arb, cmd/arbgen
// and cmd/arbbench, runnable with `go run arb/cmd/arb`).
//
// Querying is session-oriented, matching the engine's compile-once,
// query-many design: a Session wraps one open source (an on-disk database
// or an in-memory tree) and owns what its queries share — the label-name
// table and, on disk, the subtree index; a PreparedQuery holds a compiled
// program whose lazily built automata persist across executions, so a
// warm query evaluates with two hash-table lookups per node.
//
//	sess, err := arb.OpenSession("mydb")              // mydb.arb + mydb.lab (+ mydb.idx)
//	defer sess.Close()
//	prog, err := arb.ParseProgram(
//		`QUERY :- V.Label[gene].FirstChild.NextSibling*.Label[sequence];`)
//	pq, err := sess.Prepare(prog)
//	res, _, err := pq.Exec(ctx, arb.ExecOpts{})       // two linear scans
//	n := res.Count(pq.Queries()[0])
//
// One Exec call drives every execution strategy: the session's backend
// picks in-memory or secondary-storage evaluation, ExecOpts.Workers picks
// sequential or parallel, and Core XPath queries with not(..) conditions
// (sess.PrepareXPath) transparently run their auxiliary passes first —
// in memory or chained through aux-mask sidecar files on disk. Every
// path returns the same unified Result with identical selected nodes,
// and the ctx cancels long scans promptly, cleaning up temporary files.
// In-memory sources enter through NewSession(tree); ParseXML and
// TreeBuilder construct trees. The subpackages under internal implement
// the pieces (storage model, Horn solver, automata, frontends,
// workloads); this package is the supported public surface.
//
// # Parallel evaluation
//
// Tree automata evaluate independently on disjoint subtrees (the paper's
// Sections 6.2 and 7), and the preorder storage layout makes every
// subtree one contiguous byte range of the .arb file. Exec with
// ExecOpts{Workers: n} exploits both: the database's subtree index (the
// .idx sidecar, rebuilt transparently for databases that lack one) cuts
// the file into a frontier of chunks, a worker pool streams each chunk
// through its own buffered reader for both evaluation phases, and the
// lazily-computed automata are shared so transitions computed by one
// worker serve all. The aggregate I/O stays at two linear scans' worth,
// memory per worker stays bounded by the document depth, and the
// selected nodes are bit-identical to the sequential run's. The arb CLI
// exposes this as `arb query -j N`.
//
//	res, prof, err := pq.Exec(ctx, arb.ExecOpts{Workers: 4, Stats: true})
//
// Parallelism pays off on large documents whose trees are reasonably
// balanced — the ACGT-infix sequence encoding is the paper's showcase —
// because balanced trees cut into evenly-sized chunks. On degenerate
// right-deep trees (long sibling chains, e.g. ACGT-flat) the frontier
// collapses into one huge chain and evaluation degrades toward
// sequential; that asymmetry is exactly why the paper restructures
// sequences into balanced infix trees. In-memory sessions parallelise
// the same way — workers split the tree at a frontier of subtree index
// ranges; `arbbench -experiment speedup` measures the disk-path speedup
// per worker count.
//
// # Batch execution
//
// The two linear scans dominate the cost model and are query-independent
// I/O, so a server fielding many concurrent queries should pay them once
// per workload, not once per query. Session.PrepareBatch groups any mix
// of TMNF programs and Core XPath queries into a PreparedBatch whose
// Exec evaluates every member during a single pair of scans per round:
// the scan iteration, the buffered readers and one widened temporary
// state file are shared, each member keeps its own lazily built automata
// and its own Result, and the selected nodes are bit-identical to
// stand-alone execution on every strategy (memory, disk, parallel disk).
// Multi-pass not(..) members piggyback too — round r runs pass r of
// every member that still has one, so the batch's scan-pair count is the
// deepest member's pass count rather than the sum over members.
//
//	pb, err := sess.PrepareBatch(prog, xq1, xq2)
//	results, prof, err := pb.Exec(ctx, arb.ExecOpts{Stats: true})
//	// prof.Disk.PhaseN.Bytes + prof.Disk.PhaseN.SkippedBytes == database
//	// bytes per phase: exactly two aggregate linear scans' worth of
//	// coverage, however many queries.
//
// The CLI exposes batches as `arb query <base> -f queries.txt -batch`,
// and `arbbench -experiment batch` records the sequential-vs-batch
// speedup and the bytes-scanned-per-query trajectory in BENCH_batch.json.
//
// # Serving
//
// Prepared handles are reentrant: any number of goroutines may Exec one
// PreparedQuery or PreparedBatch at once, overlapping freely while the
// compiled automata stay shared and warm (engines synchronise
// internally; only KeepStates disk runs serialise per handle, on the
// fixed base.sta name). Session.BatchOf folds already-prepared handles
// into a shared-scan batch without recompiling — together these are the
// building blocks of `arb serve` (internal/server), the long-running
// HTTP query server with an LRU plan cache over normalized query text
// and an adaptive coalescer that gathers concurrent requests into
// shared-scan batches; `arbbench -experiment serve` records its
// coalesced-vs-per-request throughput in BENCH_serve.json.
//
// # Compressed extents
//
// Both scan passes are sequential-bandwidth-bound, so block-compressed
// databases (format v3; CompressDB, CLI: `arb create -compress`) trade
// spare CPU for proportionally fewer bytes read: the .arb record stream
// is stored as independently compressed fixed-size extents behind the
// same ReadAt interface every scan primitive already uses, so all
// strategies — sequential, parallel, batched, pruned, patched — run
// unmodified and bit-identical on compressed databases. Incompressible
// blocks are stored raw, old uncompressed databases keep opening
// transparently, and Profile's ScanStats report physical next to
// logical bytes (Disk.PhaseN.PhysicalBytes); `arbbench -experiment
// compress` records ratio and scan speedup per block size in
// BENCH_compress.json.
//
// # Selectivity-aware scan pruning
//
// For selective queries most of those scanned bytes are provably
// irrelevant: a static analysis of the compiled automata derives the set
// of live labels (and whether whole label-disjoint subtrees can ever
// contribute a state or a selection), and every strategy then seeks past
// subtree extents whose label summary — carried per extent by the v2
// .idx sidecar, or by the session's in-memory tree index — is disjoint
// from it. Pruned execution is bit-identical to unpruned on every
// strategy and batch member; ExecOpts.NoPrune (CLI: `arb query
// -noprune`) disables it, and Profile reports the savings
// (Disk.PhaseN.SkippedBytes, Engine.PrunedNodes). `arbbench -experiment
// prune` records bytes skipped and speedup versus selectivity in
// BENCH_prune.json.
package arb

import (
	"context"
	"fmt"
	"io"

	"arb/internal/core"
	"arb/internal/parallel"
	"arb/internal/rescache"
	"arb/internal/storage"
	"arb/internal/tmnf"
	"arb/internal/tree"
	"arb/internal/xmlparse"
	"arb/internal/xpath"
)

// Re-exported core types. These aliases are the stable names; see the
// originating packages for full documentation.
type (
	// Tree is an in-memory binary (first-child/next-sibling) tree.
	Tree = tree.Tree
	// NodeID is a node's preorder index (= XML document order).
	NodeID = tree.NodeID
	// Names maps label indices to tag names (the .lab table).
	Names = tree.Names
	// Label is a node label: 0..255 are text characters, >= 256 tags.
	Label = tree.Label

	// Program is a TMNF program (possibly with several query predicates).
	Program = tmnf.Program
	// Pred identifies an IDB predicate of a Program.
	Pred = tmnf.Pred

	// DB is an open .arb database in secondary storage.
	DB = storage.DB
	// CreateStats reports database-creation statistics (Figure 5).
	CreateStats = storage.CreateStats

	// Engine evaluates one compiled program over trees or databases.
	//
	// Deprecated: prepare queries on a Session instead; PreparedQuery
	// persists the engine across executions and supports cancellation.
	Engine = core.Engine
	// Result holds the selected nodes per query predicate.
	Result = core.Result
	// RunOpts configures in-memory runs of the deprecated Engine.Run.
	RunOpts = core.RunOpts
	// DiskOpts configures secondary-storage runs of the deprecated
	// Engine.RunDisk.
	DiskOpts = core.DiskOpts
	// DiskStats reports the scan profile of a secondary-storage run
	// (Profile.Disk).
	DiskStats = core.DiskStats
	// Stats reports engine work (the paper's Figure 6 columns).
	Stats = core.Stats

	// XPathQuery is a Core XPath query compiled to TMNF passes.
	XPathQuery = xpath.Query

	// ResultCacheStats reports the result cache's counters
	// (Session.ResultCacheStats).
	ResultCacheStats = rescache.Stats

	// ParallelResult holds the result of a multi-worker run; it is the
	// same unified type every execution path returns.
	//
	// Deprecated: use Result.
	ParallelResult = parallel.Result
)

// None is the absent-node sentinel.
const None = tree.None

// ParseProgram parses a TMNF program in the Arb surface syntax,
// including caterpillar expressions. The predicate named QUERY (or Query)
// is the query predicate by default; use Program.SetQueries to override.
func ParseProgram(src string) (*Program, error) { return tmnf.Parse(src) }

// ParseXPath parses a Core XPath query and translates it to TMNF. The
// positive fragment compiles to a single program; not(..) conditions add
// auxiliary passes (evaluate with XPathQuery.Eval).
func ParseXPath(src string) (*XPathQuery, error) { return xpath.Compile(src) }

// ParseXML parses an XML document into an in-memory tree, text as one
// node per character.
func ParseXML(r io.Reader) (*Tree, error) {
	return xmlparse.ParseTree(r, xmlparse.Opts{})
}

// TreeBuilder constructs an in-memory tree from document events
// (Begin/Text/End), producing the binary encoding incrementally.
type TreeBuilder = tree.Builder

// NewTreeBuilder returns a builder with a fresh label-name table.
func NewTreeBuilder() *TreeBuilder { return tree.NewBuilder(nil) }

// CreateDB builds a .arb database (base.arb, base.lab) from an XML
// document using the paper's two-pass scheme: a SAX pass writes a
// temporary event file, a backward pass turns it into the binary-tree
// encoding with memory proportional to the document depth.
func CreateDB(base string, xml io.Reader) (*DB, *CreateStats, error) {
	return xmlparse.CreateDB(base, xml, xmlparse.Opts{}, storage.CreateOpts{})
}

// CreateDBFromTree writes an in-memory tree as a database.
func CreateDBFromTree(base string, t *Tree) (*DB, error) {
	return storage.CreateFromTree(base, t)
}

// OpenDB opens an existing database. Raw and block-compressed
// databases are distinguished by their container magic; both serve the
// same logical record space.
func OpenDB(base string) (*DB, error) { return storage.Open(base) }

// CompressionInfo summarises a block-compressed database container:
// codec, block size, and physical versus logical bytes
// (CompressionInfo.Ratio). DB.Compression reports it for open handles.
type CompressionInfo = storage.ContainerInfo

// CodecName returns the human-readable name of a CompressionInfo codec
// ("raw", "lz", "flate").
func CodecName(codec uint8) string { return storage.CodecName(codec) }

// CompressDB rewrites base.arb in place as a block-compressed container
// (format v3), replacing it atomically and refreshing the .idx sidecar.
// codec is "lz" (the built-in LZ codec, fastest decode — the default
// for an empty string), "flate" (stdlib DEFLATE, tighter, slower);
// blockSize 0 selects the default extent size. Every reader opened
// afterwards — including old handles' snapshots in the versioned store
// — sees identical records; only the physical layout changes.
func CompressDB(base string, codec string, blockSize int) (CompressionInfo, error) {
	c, err := storage.ParseCodec(codec)
	if err != nil {
		return CompressionInfo{}, err
	}
	if c == storage.CodecRaw {
		return CompressionInfo{}, fmt.Errorf("arb: CompressDB with codec raw is a no-op; databases are created raw")
	}
	return storage.CompressInPlace(base, c, blockSize)
}

// EmitXML writes the database back out as XML, wrapping the nodes for
// which selected returns true in <arb:selected> markup (the system's
// default output mode). selected may be nil for plain output.
func EmitXML(db *DB, w io.Writer, selected func(v int64) bool) error {
	return storage.EmitXMLContext(context.Background(), db, w, selected)
}
