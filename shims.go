//arblint:shims
// Deprecated pre-Session entry points kept for callers of earlier
// releases; in-repo code (library, cmd/ and examples/ alike) must not
// call them — the noshims analyzer enforces it.

package arb

import (
	"arb/internal/core"
	"arb/internal/parallel"
)

// NewEngine compiles a program and prepares an engine for evaluating it
// against trees or databases using the given label-name table (use
// db.Names for databases, t.Names() for trees).
//
// Deprecated: use Session.Prepare, which binds the engine to the
// session's source and adds cancellation, parallel dispatch and
// multi-pass support behind one Exec call.
func NewEngine(p *Program, names *Names) (*Engine, error) {
	c, err := core.Compile(p)
	if err != nil {
		return nil, err
	}
	return core.NewEngine(c, names), nil
}

// RunParallel evaluates the engine's program over an in-memory tree with
// multiple workers (0 = GOMAXPROCS); see internal/parallel for the
// frontier decomposition. Results are identical to Engine.Run.
//
// Deprecated: use Session.Prepare and PreparedQuery.Exec with
// ExecOpts{Workers: n}.
func RunParallel(e *Engine, t *Tree, workers int) (*ParallelResult, error) {
	return parallel.Run(e, t, workers)
}
