package arb_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arb"
)

// buildCatalog constructs a catalog document large enough that the
// parallel disk evaluator genuinely cuts a chunk frontier (its
// coordination threshold is 2^15 nodes; text is one node per character,
// so items*~45 nodes passes it comfortably), with a planted pattern for
// a not(..) query: every third item lacks a flag child.
func buildCatalog(tb testing.TB, items int) *arb.Tree {
	tb.Helper()
	b := arb.NewTreeBuilder()
	must := func(err error) {
		tb.Helper()
		if err != nil {
			tb.Fatal(err)
		}
	}
	must(b.Begin("catalog"))
	for i := 0; i < items; i++ {
		must(b.Begin("item"))
		must(b.Begin("name"))
		must(b.Text([]byte(fmt.Sprintf("product-%06d-%016x", i, uint64(i)*2654435761))))
		must(b.End())
		if i%3 != 0 {
			must(b.Begin("flag"))
			must(b.Text([]byte("y")))
			must(b.End())
		}
		must(b.End())
	}
	must(b.End())
	t, err := b.Tree()
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

// selectedOf runs the query and returns the selected node ids.
func selectedOf(tb testing.TB, pq *arb.PreparedQuery, opts arb.ExecOpts) []arb.NodeID {
	tb.Helper()
	res, _, err := pq.Exec(context.Background(), opts)
	if err != nil {
		tb.Fatal(err)
	}
	return res.Selected(pq.Queries()[0])
}

// TestExecDifferentialNotXPath is the differential test of the unified
// Exec path: a multi-pass XPath query (not(..) adds an auxiliary pass)
// evaluated in memory, on disk sequentially, and on disk in parallel —
// plus in-memory parallel for completeness — must select identical
// nodes on a document big enough that the parallel disk path truly cuts
// a chunk frontier.
func TestExecDifferentialNotXPath(t *testing.T) {
	tr := buildCatalog(t, 1200)
	if tr.Len() < 1<<15 {
		t.Fatalf("catalog has %d nodes, below the parallel threshold", tr.Len())
	}
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	xq, err := arb.ParseXPath(`//item[not(flag)]/name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(xq.Passes) == 0 {
		t.Fatal("query compiled without auxiliary passes; not(..) should be multi-pass")
	}

	memSess := arb.NewSession(tr)
	diskSess := arb.NewDBSession(db)
	memPQ, err := memSess.PrepareXPath(xq)
	if err != nil {
		t.Fatal(err)
	}
	diskPQ, err := diskSess.PrepareXPath(xq)
	if err != nil {
		t.Fatal(err)
	}

	want := selectedOf(t, memPQ, arb.ExecOpts{})
	if len(want) != 400 {
		t.Fatalf("memory Exec selected %d nodes, want 400 (one name per flagless item)", len(want))
	}
	got := map[string][]arb.NodeID{
		"memory-parallel": selectedOf(t, memPQ, arb.ExecOpts{Workers: 4}),
		"disk-sequential": selectedOf(t, diskPQ, arb.ExecOpts{}),
		"disk-parallel":   selectedOf(t, diskPQ, arb.ExecOpts{Workers: 4}),
	}
	for path, sel := range got {
		if len(sel) != len(want) {
			t.Fatalf("%s selected %d nodes, memory selected %d", path, len(sel), len(want))
		}
		for i := range sel {
			if sel[i] != want[i] {
				t.Fatalf("%s: selected node %d is %d, memory selected %d", path, i, sel[i], want[i])
			}
		}
	}

	// No execution left temporary state or aux files next to the
	// database.
	assertOnlyDatabaseFiles(t, dir)
}

// assertOnlyDatabaseFiles fails if dir holds anything beyond the
// database triple (.arb, .lab, .idx) — stray .sta state files, aux
// sidecars or arb-aux-* directories mean an execution leaked.
func assertOnlyDatabaseFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch ext := filepath.Ext(e.Name()); ext {
		case ".arb", ".lab", ".idx":
		default:
			t.Errorf("stray file after execution: %s", e.Name())
		}
	}
}

// TestExecCancelDisk checks prompt cancellation on the secondary-storage
// paths: an already-cancelled context must abort sequential, parallel
// and multi-pass executions with ctx.Err(), and every temporary file —
// phase-1 state files and the aux sidecars chaining multi-pass XPath —
// must be cleaned up.
func TestExecCancelDisk(t *testing.T) {
	tr := buildCatalog(t, 1200)
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sess := arb.NewDBSession(db)

	xq, err := arb.ParseXPath(`//item[not(flag)]/name`)
	if err != nil {
		t.Fatal(err)
	}
	xpq, err := sess.PrepareXPath(xq)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := arb.ParseProgram(`QUERY :- Label[name];`)
	if err != nil {
		t.Fatal(err)
	}
	tpq, err := sess.Prepare(prog)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func() error{
		"tmnf-sequential": func() error { _, _, err := tpq.Exec(ctx, arb.ExecOpts{}); return err },
		"tmnf-parallel":   func() error { _, _, err := tpq.Exec(ctx, arb.ExecOpts{Workers: 4}); return err },
		"xpath-multipass": func() error { _, _, err := xpq.Exec(ctx, arb.ExecOpts{}); return err },
		"xpath-parallel":  func() error { _, _, err := xpq.Exec(ctx, arb.ExecOpts{Workers: 4}); return err },
	} {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error %v, want context.Canceled", name, err)
		}
	}
	assertOnlyDatabaseFiles(t, dir)

	// A deadline that has already passed reports DeadlineExceeded.
	dctx, dcancel := context.WithTimeout(context.Background(), 1)
	defer dcancel()
	<-dctx.Done()
	if _, _, err := xpq.Exec(dctx, arb.ExecOpts{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: error %v, want context.DeadlineExceeded", err)
	}
	assertOnlyDatabaseFiles(t, dir)

	// The queries still work afterwards: cancellation must not corrupt
	// the prepared state.
	n, err := xpq.Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 400 {
		t.Fatalf("after cancellation the query selects %d nodes, want 400", n)
	}
}

// TestExecCancelMemory checks cancellation of the in-memory paths.
func TestExecCancelMemory(t *testing.T) {
	tr := buildCatalog(t, 400)
	sess := arb.NewSession(tr)
	xq, err := arb.ParseXPath(`//item[not(flag)]/name`)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := sess.PrepareXPath(xq)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := pq.Exec(ctx, arb.ExecOpts{}); !errors.Is(err, context.Canceled) {
		t.Errorf("sequential: error %v, want context.Canceled", err)
	}
	if _, _, err := pq.Exec(ctx, arb.ExecOpts{Workers: 3}); !errors.Is(err, context.Canceled) {
		t.Errorf("parallel: error %v, want context.Canceled", err)
	}
	if n, err := pq.Count(context.Background()); err != nil || n == 0 {
		t.Fatalf("after cancellation: %d nodes, err %v", n, err)
	}
}

// TestExecCancelMidScan cancels concurrently with a running execution.
// Whether the cancel lands before, during or after the scans, the
// invariant is the same: either a clean result or ctx.Err(), and no
// temporary files left behind.
func TestExecCancelMidScan(t *testing.T) {
	tr := buildCatalog(t, 1500)
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sess := arb.NewDBSession(db)
	xq, err := arb.ParseXPath(`//item[not(flag)]/name`)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := sess.PrepareXPath(xq)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			res, _, err := pq.Exec(ctx, arb.ExecOpts{Workers: 2})
			if err == nil && res.Count(pq.Queries()[0]) != 500 {
				err = fmt.Errorf("completed run selected %d nodes, want 500", res.Count(pq.Queries()[0]))
			}
			done <- err
		}()
		cancel()
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: error %v, want nil or context.Canceled", i, err)
		}
		assertOnlyDatabaseFiles(t, dir)
	}
}

// TestSessionConcurrentExec runs one prepared query from many goroutines
// at once (Execs serialise internally) alongside a second prepared query
// on the same session; every run must agree.
func TestSessionConcurrentExec(t *testing.T) {
	tr := buildCatalog(t, 600)
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sess := arb.NewDBSession(db)
	prog, err := arb.ParseProgram(`QUERY :- Label[flag];`)
	if err != nil {
		t.Fatal(err)
	}
	pq1, err := sess.Prepare(prog)
	if err != nil {
		t.Fatal(err)
	}
	xq, err := arb.ParseXPath(`//item[not(flag)]`)
	if err != nil {
		t.Fatal(err)
	}
	pq2, err := sess.PrepareXPath(xq)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		pq, want := pq1, int64(400)
		if g%2 == 1 {
			pq, want = pq2, 200
		}
		go func() {
			n, err := pq.Count(context.Background())
			if err == nil && n != want {
				err = fmt.Errorf("selected %d nodes, want %d", n, want)
			}
			errc <- err
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
	assertOnlyDatabaseFiles(t, dir)
}

// TestExecMarkedOutputBothBackends checks that MarkTo produces the same
// marked document from the in-memory and the secondary-storage paths.
func TestExecMarkedOutputBothBackends(t *testing.T) {
	tr := buildCatalog(t, 40)
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	xq, err := arb.ParseXPath(`//item[not(flag)]/name`)
	if err != nil {
		t.Fatal(err)
	}
	var mem, disk strings.Builder
	memPQ, err := arb.NewSession(tr).PrepareXPath(xq)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := memPQ.Exec(context.Background(), arb.ExecOpts{MarkTo: &mem}); err != nil {
		t.Fatal(err)
	}
	diskPQ, err := arb.NewDBSession(db).PrepareXPath(xq)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := diskPQ.Exec(context.Background(), arb.ExecOpts{MarkTo: &disk}); err != nil {
		t.Fatal(err)
	}
	if mem.String() != disk.String() {
		t.Fatalf("marked output differs between backends:\nmemory: %.200s\ndisk:   %.200s", mem.String(), disk.String())
	}
	if n := strings.Count(disk.String(), `arb:selected="true"`); n != 14 {
		t.Fatalf("marked output has %d selected elements, want 14", n)
	}
}

// TestExecMarkQueryValidation checks that an out-of-range MarkQuery is
// rejected with an error on both backends instead of panicking (memory)
// or silently marking nothing (disk).
func TestExecMarkQueryValidation(t *testing.T) {
	tr := buildCatalog(t, 10)
	db, err := arb.CreateDBFromTree(filepath.Join(t.TempDir(), "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	xq, err := arb.ParseXPath(`//item[not(flag)]`)
	if err != nil {
		t.Fatal(err)
	}
	for name, sess := range map[string]*arb.Session{
		"memory": arb.NewSession(tr),
		"disk":   arb.NewDBSession(db),
	} {
		pq, err := sess.PrepareXPath(xq)
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		for _, bad := range []int{-1, 1, 7} {
			_, _, err := pq.Exec(context.Background(), arb.ExecOpts{MarkTo: &out, MarkQuery: bad})
			if err == nil || !strings.Contains(err.Error(), "MarkQuery") {
				t.Errorf("%s: MarkQuery %d: error %v, want out-of-range error", name, bad, err)
			}
		}
	}
}
