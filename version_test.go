package arb_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"arb"
)

// randElemXML returns a random element-only document of at most maxNodes
// nodes. With serial non-nil, roughly an eighth of the tags are freshly
// minted names — patches built from such fragments grow the label table,
// exercising the prepared handles' lazy recompilation.
func randElemXML(r *rand.Rand, serial *int, maxNodes int) string {
	tags := []string{"a", "b", "c", "d", "e"}
	var b strings.Builder
	budget := 1 + r.Intn(maxNodes)
	var emit func() int
	emit = func() int {
		tag := tags[r.Intn(len(tags))]
		if serial != nil && r.Intn(8) == 0 {
			*serial++
			tag = fmt.Sprintf("g%d", *serial)
		}
		used := 1
		budget--
		b.WriteString("<" + tag + ">")
		for budget > 0 && r.Intn(2) == 0 {
			used += emit()
		}
		b.WriteString("</" + tag + ">")
		return used
	}
	emit()
	return b.String()
}

// TestVersionedSessionDifferential drives a random patch sequence
// through the public Session surface and, at every checkpoint, holds the
// versioned store to the freshly-created oracle: the current version is
// emitted, rebuilt as a plain flat .arb database, and every execution
// strategy — sequential, parallel, pruning disabled, shared-scan batch —
// must select exactly the nodes the flat database selects, while the
// emitted documents match byte for byte. Compaction and reopening from
// disk must be invisible to all of it.
func TestVersionedSessionDifferential(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			base := filepath.Join(dir, "db")

			doc, err := arb.ParseXML(strings.NewReader("<a>" + randElemXML(r, nil, 40) + randElemXML(r, nil, 40) + "</a>"))
			if err != nil {
				t.Fatal(err)
			}
			db, err := arb.CreateDBFromTree(base, doc)
			if err != nil {
				t.Fatal(err)
			}
			db.Close()
			sess, err := arb.OpenVersionedSession(nil, base)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { sess.Close() }()

			sources := []string{"//a/b", "//c", "//b//d", "//a/b/c", "//e"}
			queries := make([]*arb.XPathQuery, len(sources))
			prepared := make([]*arb.PreparedQuery, len(sources))
			items := make([]any, len(sources))
			for i, src := range sources {
				if queries[i], err = arb.ParseXPath(src); err != nil {
					t.Fatal(err)
				}
				if prepared[i], err = sess.PrepareXPath(queries[i]); err != nil {
					t.Fatal(err)
				}
				items[i] = queries[i]
			}
			batch, err := sess.PrepareBatch(items...)
			if err != nil {
				t.Fatal(err)
			}

			oracleN := 0
			verify := func() {
				t.Helper()
				// Freshly-created oracle: emit the current version and
				// rebuild it as a plain single-file database.
				var emitted bytes.Buffer
				if err := sess.EmitXML(nil, &emitted, nil); err != nil {
					t.Fatal(err)
				}
				otree, err := arb.ParseXML(bytes.NewReader(emitted.Bytes()))
				if err != nil {
					t.Fatalf("version %d does not emit parseable XML: %v", sess.Version(), err)
				}
				oracleN++
				obase := filepath.Join(dir, fmt.Sprintf("oracle%d", oracleN))
				odb, err := arb.CreateDBFromTree(obase, otree)
				if err != nil {
					t.Fatal(err)
				}
				odb.Close()
				osess, err := arb.OpenSession(obase)
				if err != nil {
					t.Fatal(err)
				}
				defer osess.Close()

				if got, want := sess.Len(), osess.Len(); got != want {
					t.Fatalf("version %d holds %d nodes, flat recreation %d", sess.Version(), got, want)
				}
				var flat bytes.Buffer
				if err := osess.EmitXML(nil, &flat, nil); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(emitted.Bytes(), flat.Bytes()) {
					t.Fatalf("version %d emission differs from its flat recreation", sess.Version())
				}

				bres, bprof, err := batch.Exec(nil, arb.ExecOpts{Stats: true})
				if err != nil {
					t.Fatal(err)
				}
				if bprof.Version != sess.Version() {
					t.Fatalf("batch read version %d, store is at %d", bprof.Version, sess.Version())
				}
				for i, pq := range prepared {
					opq, err := osess.PrepareXPath(queries[i])
					if err != nil {
						t.Fatal(err)
					}
					owant, oprof, err := opq.Exec(nil, arb.ExecOpts{Stats: true})
					if err != nil {
						t.Fatal(err)
					}
					if oprof.Version != 0 {
						t.Fatalf("unversioned execution reports version %d", oprof.Version)
					}
					want := owant.Selected(opq.Queries()[0])
					for _, opts := range []arb.ExecOpts{
						{Workers: 1, Stats: true},
						{Workers: 4, Stats: true},
						{NoPrune: true, Stats: true},
					} {
						res, prof, err := pq.Exec(nil, opts)
						if err != nil {
							t.Fatalf("%s at version %d: %v", sources[i], sess.Version(), err)
						}
						if got := res.Selected(pq.Queries()[0]); !reflect.DeepEqual(got, want) {
							t.Fatalf("%s at version %d (%+v): selected %v, flat recreation %v",
								sources[i], sess.Version(), opts, got, want)
						}
						if prof.Version != sess.Version() {
							t.Fatalf("execution read version %d, store is at %d", prof.Version, sess.Version())
						}
					}
					if got := bres[i].Selected(batch.Queries(i)[0]); !reflect.DeepEqual(got, want) {
						t.Fatalf("%s at version %d (batch): selected %v, flat recreation %v",
							sources[i], sess.Version(), got, want)
					}
				}
			}

			verify()
			serial := 0
			for step := 0; step < 24; step++ {
				frag, err := arb.ParseXML(strings.NewReader(randElemXML(r, &serial, 12)))
				if err != nil {
					t.Fatal(err)
				}
				op := arb.PatchOp{Tree: frag}
				switch r.Intn(3) {
				case 0:
					op.Op, op.Node = "replace", 1+r.Int63n(sess.Len()-1)
				case 1:
					if sess.Len() < 3 {
						continue
					}
					op.Op, op.Node, op.Tree = "delete", 1+r.Int63n(sess.Len()-1), nil
				case 2:
					op.Op, op.Node = "insert-child", r.Int63n(sess.Len())
				}
				info, err := sess.Patch(nil, op)
				if err != nil {
					t.Fatalf("step %d %s@%d: %v", step, op.Op, op.Node, err)
				}
				if info.Version != sess.Version() || info.Nodes != sess.Len() {
					t.Fatalf("step %d: patch reports version %d/%d nodes, session %d/%d",
						step, info.Version, info.Nodes, sess.Version(), sess.Len())
				}
				if step%6 == 5 {
					verify()
				}
				if step == 11 {
					if _, err := sess.Compact(nil); err != nil {
						t.Fatal(err)
					}
					verify()
				}
			}

			// Reopen from disk: OpenSession detects the manifest and comes
			// back versioned at the same version, answering identically.
			wantVersion, wantLen := sess.Version(), sess.Len()
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
			sess, err = arb.OpenSession(base)
			if err != nil {
				t.Fatal(err)
			}
			if !sess.Versioned() {
				t.Fatal("reopened session lost its versioning")
			}
			if sess.Version() != wantVersion || sess.Len() != wantLen {
				t.Fatalf("reopened at version %d/%d nodes, want %d/%d",
					sess.Version(), sess.Len(), wantVersion, wantLen)
			}
			for i := range sources {
				if prepared[i], err = sess.PrepareXPath(queries[i]); err != nil {
					t.Fatal(err)
				}
			}
			if batch, err = sess.PrepareBatch(items...); err != nil {
				t.Fatal(err)
			}
			verify()
		})
	}
}
