// Dtdcheck demonstrates the paper's Section 1.3 item 4 — node selection
// based on conformance with a DTD-style schema, a universal property far
// beyond path languages but expressible in MSO.
//
// Each element type's content model (a regular expression over child
// tags) is compiled to a complete DFA; the DFA run over each element's
// child sequence becomes TMNF predicates propagated along sibling
// chains, and an element is selected iff its children end in a non-final
// state — i.e. the query marks every schema violation in one two-pass
// run. The result is cross-checked against a direct recursive validator.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"arb"
)

// The schema: a bibliography where a book is title, author+, year? and
// a journal is title, (article)+ with article = title, author+.
var schema = map[string][]string{
	// type -> allowed child sequences, as simple alternation of
	// fixed sequences with + and ? markers expanded below.
	"bib":     {"(book|journal)*"},
	"book":    {"title author+ year?"},
	"journal": {"title article+"},
	"article": {"title author+"},
	"title":   {""}, // text-only: no element children
	"author":  {""},
	"year":    {""},
}

func main() {
	dir, err := os.MkdirTemp("", "arb-dtdcheck")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate a bibliography with deliberate violations (books without
	// titles, articles with stray years).
	rng := rand.New(rand.NewSource(11))
	b := arb.NewTreeBuilder()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	emitLeaf := func(tag, text string) {
		must(b.Begin(tag))
		must(b.Text([]byte(text)))
		must(b.End())
	}
	must(b.Begin("bib"))
	violations := 0
	for i := 0; i < 300; i++ {
		if rng.Intn(2) == 0 {
			must(b.Begin("book"))
			bad := rng.Intn(10) == 0
			if bad {
				violations++ // book missing its title
			} else {
				emitLeaf("title", "t")
			}
			for n := 1 + rng.Intn(3); n > 0; n-- {
				emitLeaf("author", "a")
			}
			if rng.Intn(2) == 0 {
				emitLeaf("year", "2003")
			}
			must(b.End())
		} else {
			must(b.Begin("journal"))
			emitLeaf("title", "j")
			for n := 1 + rng.Intn(2); n > 0; n-- {
				must(b.Begin("article"))
				emitLeaf("title", "t")
				emitLeaf("author", "a")
				if rng.Intn(12) == 0 {
					emitLeaf("year", "1999") // not allowed in article
					violations++
				}
				must(b.End())
			}
			must(b.End())
		}
	}
	must(b.End())
	t, err := b.Tree()
	if err != nil {
		log.Fatal(err)
	}
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "bib"), t)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Printf("bibliography: %d nodes, %d planted violations\n", db.N, violations)

	src := compileSchema(schema)
	prog, err := arb.ParseProgram(src)
	if err != nil {
		log.Fatalf("generated program: %v\n%s", err, src)
	}
	sess := arb.NewDBSession(db)
	defer sess.Close()
	pq, err := sess.Prepare(prog)
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := pq.Exec(context.Background(), arb.ExecOpts{})
	if err != nil {
		log.Fatal(err)
	}
	got := res.Count(pq.Queries()[0])
	fmt.Printf("schema check in two scans: %d violating elements\n", got)
	if got != int64(violations) {
		log.Fatalf("engine found %d violations, generator planted %d", got, violations)
	}
	fmt.Println("matches the planted violations")
}

// compileSchema turns the content models into one TMNF program whose
// QUERY predicate marks every element violating its model. Content
// models here are whitespace-separated child tags with optional + / * /
// ? suffixes (rich enough for the demonstration; the DFA construction
// below is standard and would take any regular expression).
func compileSchema(schema map[string][]string) string {
	var sb strings.Builder
	types := make([]string, 0, len(schema))
	for t := range schema {
		types = append(types, t)
	}
	sort.Strings(types)

	for _, typ := range types {
		dfa := contentDFA(schema[typ][0])
		// Dq_<typ>_<state> holds at a child c of a <typ> element iff the
		// DFA is in <state> after consuming the children up to and
		// including c. Character children are schema violations inside
		// element-only models and move the DFA to the dead state; for
		// text-only types (empty model) any element child is dead.
		p := func(q int) string { return fmt.Sprintf("D_%s_%d", typ, q) }

		// The complement class: children whose label is outside the
		// model's alphabet go straight to the dead state. Rendered as a
		// conjunction of complemented tests.
		other := otherTest(dfa)
		dead := len(dfa.step) - 1

		// Seed: the first child consumes its own label from the start
		// state.
		fmt.Fprintf(&sb, "Fst_%s :- IsT_%s.FirstChild;\n", typ, typ)
		fmt.Fprintf(&sb, "IsT_%s :- Label[%s];\n", typ, typ)
		for sym, q := range dfa.step[0] {
			fmt.Fprintf(&sb, "%s :- Fst_%s, %s;\n", p(q), typ, symTest(sym))
		}
		fmt.Fprintf(&sb, "%s :- Fst_%s, %s;\n", p(dead), typ, other)
		// Steps: each next sibling consumes its label.
		for from := range dfa.step {
			fmt.Fprintf(&sb, "N_%s_%d :- %s.NextSibling;\n", typ, from, p(from))
			for sym, to := range dfa.step[from] {
				fmt.Fprintf(&sb, "%s :- N_%s_%d, %s;\n", p(to), typ, from, symTest(sym))
			}
			fmt.Fprintf(&sb, "%s :- N_%s_%d, %s;\n", p(dead), typ, from, other)
		}
		// Violations: last child in a non-final state bubbles to the
		// parent; an element with no children violates iff the start
		// state is not final.
		for q := range dfa.step {
			if !dfa.final[q] {
				fmt.Fprintf(&sb, "BadEnd_%s :- %s, LastSibling;\n", typ, p(q))
			}
		}
		fmt.Fprintf(&sb, "BadUp_%s :- BadEnd_%s;\n", typ, typ)
		fmt.Fprintf(&sb, "BadUp_%s :- BadUp_%s.invNextSibling;\n", typ, typ)
		fmt.Fprintf(&sb, "V_%s :- X_%s, IsT_%s;\n", typ, typ, typ)
		fmt.Fprintf(&sb, "X_%s :- BadUp_%s.invFirstChild;\n", typ, typ)
		if !dfa.final[0] {
			fmt.Fprintf(&sb, "V_%s :- IsT_%s, Leaf;\n", typ, typ)
		}
		fmt.Fprintf(&sb, "QUERY :- V_%s;\n", typ)
	}
	return sb.String()
}

// symTest renders the node test for a DFA alphabet symbol.
func symTest(sym string) string {
	if sym == "#text" {
		return "Text"
	}
	return fmt.Sprintf("Label[%s]", sym)
}

// otherTest renders the complement of the DFA's alphabet: not text and
// none of the alphabet tags.
func otherTest(dfa *cdfa) string {
	tags := make([]string, 0, len(dfa.step[0]))
	for sym := range dfa.step[0] {
		if sym != "#text" {
			tags = append(tags, sym)
		}
	}
	sort.Strings(tags)
	parts := []string{"-Text"}
	for _, t := range tags {
		parts = append(parts, fmt.Sprintf("-Label[%s]", t))
	}
	return strings.Join(parts, ", ")
}

// contentDFA builds a complete DFA over the child-tag alphabet plus
// "#text" and "#other" classes for a sequence model like
// "title author+ year?". State 0 is the start; the last state is a dead
// sink. Every symbol not in the model's alphabet maps to the sink.
type cdfa struct {
	step  []map[string]int // state -> symbol -> state
	final []bool
}

func contentDFA(model string) *cdfa {
	type item struct {
		tags []string // the symbol, or an alternation group (a|b|c)
		min  bool     // required at least once
		rep  bool     // repeatable
	}
	var items []item
	alphabet := map[string]bool{"#text": true}
	for _, tok := range strings.Fields(model) {
		it := item{min: true}
		body := tok
		switch {
		case strings.HasSuffix(tok, "+"):
			body, it.rep = strings.TrimSuffix(tok, "+"), true
		case strings.HasSuffix(tok, "*"):
			body, it.rep, it.min = strings.TrimSuffix(tok, "*"), true, false
		case strings.HasSuffix(tok, "?"):
			body, it.min = strings.TrimSuffix(tok, "?"), false
		}
		body = strings.TrimSuffix(strings.TrimPrefix(body, "("), ")")
		it.tags = strings.Split(body, "|")
		for _, t := range it.tags {
			alphabet[t] = true
		}
		items = append(items, it)
	}

	// States 0..len(items): "the next item to satisfy is i" (with
	// repeatable items allowing self-loops); the extra last state is the
	// dead sink.
	n := len(items) + 2
	dead := n - 1
	d := &cdfa{step: make([]map[string]int, n), final: make([]bool, n)}
	for q := range d.step {
		d.step[q] = map[string]int{}
		for sym := range alphabet {
			d.step[q][sym] = dead
		}
	}
	// final[i]: all items i.. are optional.
	for i := len(items); i >= 0; i-- {
		if i == len(items) {
			d.final[i] = true
		} else {
			d.final[i] = d.final[i+1] && !items[i].min
		}
	}
	for i := 0; i <= len(items); i++ {
		// From state i, a symbol may satisfy item j >= i if items i..j-1
		// are optional. Repeatable items loop via the "after item j"
		// state j+1 mapping the same tags back to j+1.
		for j := i; j < len(items); j++ {
			for _, t := range items[j].tags {
				if d.step[i][t] == dead {
					d.step[i][t] = j + 1
				}
			}
			if items[j].min {
				// A required item blocks skipping past it.
				break
			}
		}
	}
	// Self-loops for repeatable items: in state j+1, the same tags stay.
	for j, it := range items {
		if !it.rep {
			continue
		}
		for _, t := range it.tags {
			if d.step[j+1][t] == dead {
				d.step[j+1][t] = j + 1
			}
		}
	}
	// An empty model means #PCDATA: text children are fine, element
	// children are not.
	if len(items) == 0 {
		d.step[0]["#text"] = 0
	}
	return d
}
