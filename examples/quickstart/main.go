// Quickstart: build a database from XML, query it with TMNF and with
// Core XPath, and emit the document with matches marked up.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"arb"
)

const doc = `<library>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author>Stevens</author>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Buneman</author>
    <author>Suciu</author>
  </book>
  <article>
    <title>Query Automata</title>
    <author>Neven</author>
    <author>Schwentick</author>
  </article>
</library>`

func main() {
	dir, err := os.MkdirTemp("", "arb-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "library")

	// 1. Create the database: two passes over the XML, then two files
	// (library.arb, library.lab) in the storage model of Section 5.
	db, stats, err := arb.CreateDB(base, strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Printf("database: %d element nodes, %d character nodes, %d tags\n",
		stats.ElemNodes, stats.CharNodes, stats.Tags)

	// 2. Open a session over the database: it owns what every query on
	// it shares (the label table and, for parallel runs, the subtree
	// index); prepared queries keep their compiled automata warm across
	// executions.
	sess := arb.NewDBSession(db)
	defer sess.Close()
	ctx := context.Background()

	// A TMNF query in the Arb surface syntax: titles of publications
	// with more than one author. Caterpillar rules mark the node a walk
	// ends at, so the walk finds two distinct author siblings and then
	// returns left to the title.
	prog, err := arb.ParseProgram(`
		QUERY :- V.Label[author].NextSibling.NextSibling*.Label[author].
		         invNextSibling.invNextSibling*.Label[title];
	`)
	if err != nil {
		log.Fatal(err)
	}
	pq, err := sess.Prepare(prog)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate on disk: one backward and one forward linear scan.
	res, _, err := pq.Exec(ctx, arb.ExecOpts{})
	if err != nil {
		log.Fatal(err)
	}
	q := pq.Queries()[0]
	fmt.Printf("TMNF: %d title(s) of multi-author publications\n", res.Count(q))

	// 3. The same query in Core XPath, through the same Exec call.
	xq, err := arb.ParseXPath(`//title[following-sibling::author/following-sibling::author]`)
	if err != nil {
		log.Fatal(err)
	}
	xpq, err := sess.PrepareXPath(xq)
	if err != nil {
		log.Fatal(err)
	}
	xres, _, err := xpq.Exec(ctx, arb.ExecOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XPath: %d title(s)\n", xres.Count(xpq.Queries()[0]))

	// 4. Emit the document with matches marked up (the system's default
	// output mode).
	fmt.Println("\nmarked document:")
	if err := arb.EmitXML(db, os.Stdout, func(v int64) bool {
		return res.Holds(q, arb.NodeID(v))
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
