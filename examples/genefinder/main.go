// Genefinder reproduces the paper's Section 1.3 motivating query from
// bio-informatics:
//
//	Select all nodes labeled "gene" that have a child labeled
//	"sequence" whose text contains a substring matching the regular
//	expression ACCGT(GA(C|G)ATT)*.
//
// Text is part of the tree — one node per character — so the regular
// expression runs over character-node sibling chains, inside the same
// MSO query that navigates the element structure. No streaming path
// language can express this; the two-pass engine answers it in two
// linear scans of the database. The result is cross-checked against
// direct string matching on the generated sequences.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"arb"
)

func main() {
	dir, err := os.MkdirTemp("", "arb-genefinder")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "genebank")

	// Build a synthetic gene bank; some genes get the motif (with a few
	// tail repetitions) spliced into their sequence.
	rng := rand.New(rand.NewSource(42))
	b := arb.NewTreeBuilder()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(b.Begin("genebank"))
	var sequences []string
	for g := 0; g < 200; g++ {
		seq := randomDNA(rng, 300)
		if rng.Intn(8) == 0 {
			motif := "ACCGT"
			for k := 1 + rng.Intn(2); k > 0; k-- {
				if rng.Intn(2) == 0 {
					motif += "GACATT"
				} else {
					motif += "GAGATT"
				}
			}
			at := rng.Intn(len(seq) - len(motif))
			seq = seq[:at] + motif + seq[at+len(motif):]
		}
		sequences = append(sequences, seq)
		must(b.Begin("gene"))
		must(b.Begin("name"))
		must(b.Text([]byte(fmt.Sprintf("G%03d", g))))
		must(b.End())
		must(b.Begin("sequence"))
		must(b.Text([]byte(seq)))
		must(b.End())
		must(b.End())
	}
	must(b.End())
	t, err := b.Tree()
	if err != nil {
		log.Fatal(err)
	}
	db, err := arb.CreateDBFromTree(base, t)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Direct string matching as the oracle. The starred tail matches
	// zero or more times, so a sequence matches iff it contains ACCGT.
	want := 0
	for _, s := range sequences {
		if strings.Contains(s, "ACCGT") {
			want++
		}
	}
	fmt.Printf("gene bank: %d nodes; %d genes contain the motif\n", db.N, want)

	// The query. Char[..] tests character labels; "Hit" walks the motif
	// along the character sibling chain, then the remaining rules climb
	// from the hit to the sequence element and from the sequence to its
	// gene.
	prog, err := arb.ParseProgram(`
		Hit :- V.Char[A].NextSibling.Char[C].NextSibling.Char[C].
		       NextSibling.Char[G].NextSibling.Char[T]
		       .(NextSibling.Char[G].NextSibling.Char[A].
		         NextSibling.(Char[C]|Char[G]).NextSibling.Char[A].
		         NextSibling.Char[T].NextSibling.Char[T])*;
		HasHit :- Hit;
		HasHit :- HasHit.invNextSibling;
		InSeq  :- HasHit.invFirstChild;
		SeqWithHit :- Label[sequence], InSeq;
		Up :- SeqWithHit;
		Up :- Up.invNextSibling;
		AtGene :- Up.invFirstChild;
		QUERY  :- Label[gene], AtGene;
	`)
	if err != nil {
		log.Fatal(err)
	}

	sess := arb.NewDBSession(db)
	defer sess.Close()
	pq, err := sess.Prepare(prog)
	if err != nil {
		log.Fatal(err)
	}
	res, prof, err := pq.Exec(context.Background(), arb.ExecOpts{Stats: true})
	if err != nil {
		log.Fatal(err)
	}
	q := pq.Queries()[0]
	st := prof.Engine
	fmt.Printf("selected %d gene(s) in two scans: phase 1 %v (%d transitions), phase 2 %v (%d transitions)\n",
		res.Count(q), st.Phase1Time, st.BUTransitions, st.Phase2Time, st.TDTransitions)
	if res.Count(q) != int64(want) {
		log.Fatalf("engine found %d genes, string matching found %d", res.Count(q), want)
	}
	fmt.Println("engine agrees with direct string matching")
}

func randomDNA(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	const acgt = "ACGT"
	for i := range b {
		b[i] = acgt[rng.Intn(4)]
	}
	return string(b)
}
