// Parallelmatch demonstrates the paper's parallel-processing application
// (Sections 6.2 and 7): regular expression matching on a sequence
// restructured as a balanced binary infix tree. Tree automata evaluate
// independently on disjoint subtrees, so a balanced tree gives O(log n)
// parallel span; the caterpillar query walks the infix tree to the
// in-order predecessor, making the restructuring transparent to the
// query — an application of MSO expressiveness no path language covers.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"arb"
	"arb/internal/workload"
)

func main() {
	// A random DNA sequence of 2^20-1 symbols as a complete infix tree.
	seq := workload.Sequence(4, 1<<20-1)
	t := workload.InfixTree(seq)
	fmt.Printf("sequence of %d symbols as a balanced infix tree (%d nodes)\n", len(seq), t.Len())

	// Match the regular expression T.A.(C)*.G against the sequence: the
	// caterpillar step walks to the previous symbol in sequence order.
	rx := workload.PathRegex{W1: []string{"T", "A"}, W2: []string{"C"}, W3: []string{"G"}}
	prog, err := rx.Program(workload.RInfix)
	if err != nil {
		log.Fatal(err)
	}
	q := prog.Queries()[0]

	// One in-memory session; each execution strategy is just an ExecOpts
	// away. Sequential first.
	ctx := context.Background()
	sess := arb.NewSession(t)
	defer sess.Close()
	pq, err := sess.Prepare(prog)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	seqRes, _, err := pq.Exec(ctx, arb.ExecOpts{})
	if err != nil {
		log.Fatal(err)
	}
	seqTime := time.Since(start)
	fmt.Printf("sequential: %d matches in %v\n", seqRes.Count(q), seqTime)

	// Parallel runs. Cold: a fresh prepared query computes the lazy
	// transition tables under the shared-engine write lock, which
	// serialises the warm-up. Warm: with the tables populated (the
	// steady state when a prepared query serves many executions),
	// workers only take read locks and the balanced tree parallelises.
	workers := runtime.GOMAXPROCS(0)
	pq2, err := sess.Prepare(prog)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	parRes, _, err := pq2.Exec(ctx, arb.ExecOpts{Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	parCold := time.Since(start)
	start = time.Now()
	parRes, _, err = pq2.Exec(ctx, arb.ExecOpts{Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	parWarm := time.Since(start)
	fmt.Printf("parallel (%d workers): %d matches; cold %v (%.2fx), warm %v (%.2fx)\n",
		workers, parRes.Count(q), parCold, seqTime.Seconds()/parCold.Seconds(),
		parWarm, seqTime.Seconds()/parWarm.Seconds())

	if seqRes.Count(q) != parRes.Count(q) {
		log.Fatal("parallel and sequential runs disagree")
	}

	// Cross-check against direct string matching: endpoint positions of
	// backward walks spelling T A C* G, i.e. positions p with
	// seq[p..] beginning G C* A T reversed... the workload package's
	// tests formalise this; here we just count occurrences of the
	// simplest instance TAG / TACG / TACCG with a sliding window.
	direct := 0
	for p := 0; p+2 < len(seq); p++ {
		if seq[p] != 'G' {
			continue
		}
		i := p + 1
		for i < len(seq) && seq[i] == 'C' {
			i++
		}
		if i+1 < len(seq) && seq[i] == 'A' && seq[i+1] == 'T' {
			direct++
		}
	}
	fmt.Printf("direct string scan: %d matches\n", direct)
	if int64(direct) != seqRes.Count(q) {
		log.Fatal("engine disagrees with direct string matching")
	}

	// The same decomposition works in secondary storage: the database's
	// subtree index cuts the .arb file into chunk byte ranges, workers
	// stream their chunks through private readers, and in aggregate the
	// run still costs two linear scans' worth of I/O.
	dir, err := os.MkdirTemp("", "parallelmatch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "seq"), t)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	diskSess := arb.NewDBSession(db)
	defer diskSess.Close()
	diskPQ, err := diskSess.Prepare(prog)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	diskSeq, _, err := diskPQ.Exec(ctx, arb.ExecOpts{})
	if err != nil {
		log.Fatal(err)
	}
	diskSeqTime := time.Since(start)
	start = time.Now()
	diskPar, _, err := diskPQ.Exec(ctx, arb.ExecOpts{Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	diskParTime := time.Since(start)
	fmt.Printf("disk: sequential %v, parallel (%d workers, warm) %v (%.2fx); %d matches\n",
		diskSeqTime, workers, diskParTime,
		diskSeqTime.Seconds()/diskParTime.Seconds(), diskPar.Count(q))
	if diskPar.Count(q) != seqRes.Count(q) || diskSeq.Count(q) != seqRes.Count(q) {
		log.Fatal("disk runs disagree with in-memory runs")
	}
	fmt.Println("all agree")
}
