// Batchserve: one session answering a mixed query workload in shared
// scans. A server fielding heavy query traffic pays the two linear scans
// of the paper's cost model per query — unless it batches: PrepareBatch
// groups any mix of TMNF programs and Core XPath queries (including
// multi-pass not(..) queries) and Exec evaluates all of them during a
// single pair of scans per scheduled round, with results bit-identical
// to running each query alone.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"arb"
)

const doc = `<inventory>
  <product sku="100"><name>bolt</name><stock>250</stock><flag>low</flag></product>
  <product sku="101"><name>nut</name><stock>900</stock></product>
  <product sku="102"><name>washer</name><flag>low</flag><stock>12</stock></product>
  <product sku="103"><name>screw</name><stock>47</stock></product>
  <order><item>100</item><item>103</item></order>
  <order><item>101</item></order>
</inventory>`

func main() {
	dir, err := os.MkdirTemp("", "arb-batchserve")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "inventory")
	db, _, err := arb.CreateDB(base, strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	sess := arb.NewDBSession(db)
	defer sess.Close()

	// The workload: four clients' queries, arriving together. Two TMNF
	// programs, one positive XPath query, one multi-pass not(..) query.
	products, err := arb.ParseProgram(`QUERY :- Label[product];`)
	if err != nil {
		log.Fatal(err)
	}
	leaves, err := arb.ParseProgram(`QUERY :- V.Label[order].FirstChild.NextSibling*.Label[item];`)
	if err != nil {
		log.Fatal(err)
	}
	named, err := arb.ParseXPath(`//product/name`)
	if err != nil {
		log.Fatal(err)
	}
	unflagged, err := arb.ParseXPath(`//product[not(flag)]`)
	if err != nil {
		log.Fatal(err)
	}

	// One prepared batch serves the whole workload; its automata persist,
	// so the next burst of the same queries runs warm.
	pb, err := sess.PrepareBatch(products, leaves, named, unflagged)
	if err != nil {
		log.Fatal(err)
	}
	labels := []string{"products", "order items", "product names", "unflagged products"}

	res, prof, err := pb.Exec(context.Background(), arb.ExecOpts{Stats: true})
	if err != nil {
		log.Fatal(err)
	}
	for i := range res {
		fmt.Printf("%-20s %d nodes\n", labels[i]+":", res[i].Count(pb.Queries(i)[0]))
	}
	fmt.Printf("\n%d queries in %d shared scan pair(s); %d data bytes scanned per query\n",
		pb.Len(), prof.Passes,
		(prof.Disk.Phase1.Bytes+prof.Disk.Phase2.Bytes)/int64(pb.Len()))
}
