// Serve: the full query-server loop in one program — start `arb serve`'s
// engine (internal/server) over a freshly created database, query it over
// real HTTP from concurrent clients, read the /stats counters that show
// the plan cache and the shared-scan coalescer at work, and drain the
// listener gracefully. This is the compile-once/query-many shape of the
// paper deployed as a long-running service: hot queries keep their
// automata warm in the plan cache, and concurrent requests share scan
// pairs instead of paying two scans each.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"arb"
	"arb/internal/server"
)

const doc = `<inventory>
  <product sku="100"><name>bolt</name><stock>250</stock><flag>low</flag></product>
  <product sku="101"><name>nut</name><stock>900</stock></product>
  <product sku="102"><name>washer</name><flag>low</flag><stock>12</stock></product>
  <product sku="103"><name>screw</name><stock>47</stock></product>
  <order><item>100</item><item>103</item></order>
  <order><item>101</item></order>
</inventory>`

func main() {
	dir, err := os.MkdirTemp("", "arb-serve")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "inventory")
	db, _, err := arb.CreateDB(base, strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	sess := arb.NewDBSession(db)
	defer sess.Close()

	// Start: the server core plus a real HTTP listener on a random port.
	srv := server.New(context.Background(), sess, server.Config{Window: 5 * time.Millisecond, BatchMax: 8})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	addr := "http://" + ln.Addr().String()
	fmt.Println("serving inventory over HTTP")

	// Query: four concurrent clients, two of them asking the same hot
	// query — the coalescer folds the burst into shared scans and the
	// duplicate shares one cached plan.
	queries := []string{
		`QUERY :- Label[product];`,
		`xpath://product/name`,
		`xpath://product[not(flag)]`,
		`xpath://product/name`, // duplicate: plan-cache hit + dedup slot
	}
	type answer struct {
		Results []struct {
			Predicate string `json:"predicate"`
			Count     int64  `json:"count"`
		} `json:"results"`
		Coalesced int `json:"coalesced"`
	}
	answers := make([]answer, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			resp, err := http.Get(addr + "/query?q=" + url.QueryEscape(q))
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&answers[i]); err != nil {
				log.Fatal(err)
			}
		}(i, q)
	}
	wg.Wait()
	for i, q := range queries {
		a := answers[i]
		fmt.Printf("%-34s -> %d nodes (shared scans with %d plan(s))\n",
			q, a.Results[0].Count, a.Coalesced)
	}

	st := srv.Snapshot()
	fmt.Printf("served %d requests in %d execution group(s), %d scan pair(s); plan cache %d/%d hit\n",
		st.Requests, st.Coalescer.Groups, st.Profile.ScanRounds,
		st.PlanCache.Hits, st.PlanCache.Hits+st.PlanCache.Misses)

	// Drain: stop accepting, let in-flight work finish, shut the core.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained")
}
