// Evenpages runs the paper's Section 1.3 counting query — beyond any
// XPath fragment, but plainly expressible in MSO/TMNF:
//
//	Select all nodes labeled "publication" whose subtrees contain an
//	even number of nodes labeled "page".
//
// The program is the modulo-2 counting idiom of Example 2.2: leaves are
// classified even/odd, sibling lists are summed right-to-left, and
// parities propagate up — a bottom-up computation no one-pass stream
// processor over the document order can do.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"arb"
)

func main() {
	dir, err := os.MkdirTemp("", "arb-evenpages")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A bibliography of publications with page elements, some nested
	// inside sections.
	rng := rand.New(rand.NewSource(7))
	b := arb.NewTreeBuilder()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	var wantEven int
	must(b.Begin("bibliography"))
	for i := 0; i < 500; i++ {
		must(b.Begin("publication"))
		pages := 0
		sections := 1 + rng.Intn(3)
		for s := 0; s < sections; s++ {
			must(b.Begin("section"))
			n := rng.Intn(5)
			pages += n
			for p := 0; p < n; p++ {
				must(b.Begin("page"))
				must(b.End())
			}
			must(b.End())
		}
		if pages%2 == 0 {
			wantEven++
		}
		must(b.End())
	}
	must(b.End())
	t, err := b.Tree()
	if err != nil {
		log.Fatal(err)
	}
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "bib"), t)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Example 2.2, adapted: parity of "page" nodes per subtree. A node's
	// own contribution is 1 if it is labeled page. SFREven/SFROdd sum a
	// node's subtree with its right siblings' subtrees; invFirstChild
	// pushes the total to the parent.
	prog, err := arb.ParseProgram(`
		SelfOdd   :- Label[page];
		SelfEven  :- -Label[page];

		LeafEven :- Leaf, SelfEven;
		LeafOdd  :- Leaf, SelfOdd;

		Even :- LeafEven;
		Odd  :- LeafOdd;
		Even :- SFREvenKids, SelfEven;
		Odd  :- SFREvenKids, SelfOdd;
		Odd  :- SFROddKids, SelfEven;
		Even :- SFROddKids, SelfOdd;

		SFREven :- Even, LastSibling;
		SFROdd  :- Odd, LastSibling;
		FSEven :- SFREven.invNextSibling;
		FSOdd  :- SFROdd.invNextSibling;
		SFREven :- FSEven, Even;
		SFROdd  :- FSEven, Odd;
		SFROdd  :- FSOdd, Even;
		SFREven :- FSOdd, Odd;

		SFREvenKids :- SFREven.invFirstChild;
		SFROddKids  :- SFROdd.invFirstChild;

		QUERY :- Label[publication], Even;
	`)
	if err != nil {
		log.Fatal(err)
	}
	sess := arb.NewDBSession(db)
	defer sess.Close()
	pq, err := sess.Prepare(prog)
	if err != nil {
		log.Fatal(err)
	}
	res, prof, err := pq.Exec(context.Background(), arb.ExecOpts{Stats: true})
	if err != nil {
		log.Fatal(err)
	}
	q := pq.Queries()[0]
	fmt.Printf("%d of 500 publications have an even number of pages (expected %d)\n",
		res.Count(q), wantEven)
	if res.Count(q) != int64(wantEven) {
		log.Fatalf("engine disagrees with the direct count")
	}
	st := prof.Engine
	fmt.Printf("two scans over %d nodes; %d + %d lazy transitions\n",
		db.N, st.BUTransitions, st.TDTransitions)
}
