package arb

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestSessionPinsGauge pins the runtime counterpart of the snappin
// analyzer: acquire raises the session's pin gauge and the store's
// pins stat, release lowers both, double release stays idempotent, and
// a quiescent session reads zero.
func TestSessionPinsGauge(t *testing.T) {
	doc, err := ParseXML(strings.NewReader("<a><b/><c/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "db")
	db, err := CreateDBFromTree(base, doc)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	sess, err := OpenVersionedSession(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if n := sess.Pins(); n != 0 {
		t.Fatalf("fresh session holds %d pins, want 0", n)
	}

	_, _, _, release1 := sess.acquire()
	_, _, _, release2 := sess.acquire()
	if n := sess.Pins(); n != 2 {
		t.Fatalf("after two acquires Pins() = %d, want 2", n)
	}
	st, ok := sess.StoreStats()
	if !ok {
		t.Fatal("versioned session must report store stats")
	}
	if st.Pins != 2 || st.Snapshots != 2 {
		t.Fatalf("store stats report pins=%d snapshots=%d, want 2/2", st.Pins, st.Snapshots)
	}

	release1()
	release1() // idempotent: the second call must not underflow
	if n := sess.Pins(); n != 1 {
		t.Fatalf("after releasing one pin twice Pins() = %d, want 1", n)
	}
	release2()
	if n := sess.Pins(); n != 0 {
		t.Fatalf("after releasing everything Pins() = %d, want 0", n)
	}
	if st, _ := sess.StoreStats(); st.Pins != 0 {
		t.Fatalf("quiescent store reports pins=%d, want 0", st.Pins)
	}
}
