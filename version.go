package arb

import (
	"context"
	"fmt"
	"io"

	"arb/internal/storage"
	"arb/internal/vstore"
)

// Versioned-session surface: copy-on-write subtree patching with MVCC
// snapshots (internal/vstore). A versioned session keeps the whole
// query surface of a plain disk session — every execution strategy runs
// on a pinned version snapshot unmodified — and adds in-place mutation:
// ReplaceSubtree, DeleteSubtree and InsertChild write only the new
// subtree bytes plus a fixed-up index along the affected path (O(subtree),
// never O(database)), commit atomically by manifest rename, and never
// disturb a running query, which keeps reading the version it pinned.

// PatchInfo reports one committed mutation: the version it produced,
// the node-count change, and the bytes it appended.
type PatchInfo = vstore.PatchInfo

// StoreStats is a point-in-time summary of a versioned store: current
// version, live segments and versions, outstanding snapshots, and the
// patch/compaction counts since the store was opened.
type StoreStats = vstore.StoreStats

// HistoryEntry is one committed operation of a versioned database's
// history (Session.History).
type HistoryEntry = vstore.HistoryEntry

// OpenVersionedSession opens base as a versioned database. With a
// base.arbm manifest present the manifested version loads; without one,
// the plain base.arb database bootstraps read-only as version 1 — no
// files are created or modified until the first patch commits, so
// opening versioned is free and the original .arb is never rewritten.
// ctx bounds a bootstrap index build on databases lacking a .idx
// sidecar. The session owns the store: Close releases it.
func OpenVersionedSession(ctx context.Context, base string) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	vs, err := vstore.Open(ctx, base)
	if err != nil {
		return nil, err
	}
	return &Session{vs: vs, ownDB: true}, nil
}

// Versioned reports whether the session supports Patch/Compact and
// MVCC snapshots.
func (s *Session) Versioned() bool { return s.vs != nil }

// Version returns the current version id of a versioned session (each
// committed patch or compaction increments it), or 0 for unversioned
// sessions.
func (s *Session) Version() uint64 {
	if s.vs == nil {
		return 0
	}
	return s.vs.Version()
}

// History returns the committed operation chain of a versioned session,
// oldest first (nil for unversioned sessions).
func (s *Session) History() []HistoryEntry {
	if s.vs == nil {
		return nil
	}
	return s.vs.History()
}

// StoreStats returns the versioned store's bookkeeping summary; ok is
// false for unversioned sessions.
func (s *Session) StoreStats() (stats StoreStats, ok bool) {
	if s.vs == nil {
		return StoreStats{}, false
	}
	return s.vs.Stats(), true
}

// errNotVersioned is the shared guard of the mutation surface.
func (s *Session) versioned() (*vstore.Store, error) {
	if s.vs == nil {
		return nil, fmt.Errorf("arb: session is not versioned (open the database with OpenVersionedSession to patch it)")
	}
	return s.vs, nil
}

// ReplaceSubtree replaces the XML subtree rooted at node — the node and
// everything below it in document order, not its following siblings —
// with the tree t, committing a new version in O(|old subtree| + |t|)
// I/O. Queries already executing keep reading the version they pinned.
func (s *Session) ReplaceSubtree(ctx context.Context, node int64, t *Tree) (*PatchInfo, error) {
	vs, err := s.versioned()
	if err != nil {
		return nil, err
	}
	return vs.ReplaceSubtree(ctx, node, t)
}

// DeleteSubtree removes the XML subtree rooted at node (the document
// root cannot be deleted). When the node has a following sibling the
// sibling chain takes its place; otherwise the parent's child flag is
// cleared — either way one new version commits in O(|subtree|) I/O.
func (s *Session) DeleteSubtree(ctx context.Context, node int64) (*PatchInfo, error) {
	vs, err := s.versioned()
	if err != nil {
		return nil, err
	}
	return vs.DeleteSubtree(ctx, node)
}

// InsertChild inserts t as the new first child of node, before the
// node's existing children in document order. Text nodes cannot take
// children.
func (s *Session) InsertChild(ctx context.Context, node int64, t *Tree) (*PatchInfo, error) {
	vs, err := s.versioned()
	if err != nil {
		return nil, err
	}
	return vs.InsertChild(ctx, node, t)
}

// PatchOp names one mutation for Session.Patch — the string-dispatched
// form the CLI and the HTTP server speak.
type PatchOp struct {
	// Op is "replace", "delete" or "insert-child".
	Op string
	// Node is the target's preorder id in the current version.
	Node int64
	// Tree is the fragment to splice in (nil for "delete").
	Tree *Tree
}

// Patch applies one mutation described by op, committing a new version.
// It is the dynamic-dispatch twin of ReplaceSubtree / DeleteSubtree /
// InsertChild for callers that receive the operation as data (the arb
// CLI's patch subcommand, the server's POST /patch).
func (s *Session) Patch(ctx context.Context, op PatchOp) (*PatchInfo, error) {
	switch op.Op {
	case "replace":
		return s.ReplaceSubtree(ctx, op.Node, op.Tree)
	case "delete":
		if op.Tree != nil {
			return nil, fmt.Errorf("arb: patch op %q takes no fragment", op.Op)
		}
		return s.DeleteSubtree(ctx, op.Node)
	case "insert-child":
		return s.InsertChild(ctx, op.Node, op.Tree)
	default:
		return nil, fmt.Errorf("arb: unknown patch op %q (want replace, delete or insert-child)", op.Op)
	}
}

// EmitXML writes the session's document back out as XML, wrapping the
// nodes for which selected returns true in <arb:selected> markup
// (selected may be nil for plain output). Versioned sessions emit a
// consistent snapshot of the current version — a patch committing
// mid-emit changes nothing. In-memory sessions are not supported here;
// emit their tree directly.
func (s *Session) EmitXML(ctx context.Context, w io.Writer, selected func(v int64) bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	db, _, _, release := s.acquire()
	defer release()
	if db == nil {
		return fmt.Errorf("arb: EmitXML needs a disk session")
	}
	return storage.EmitXMLContext(ctx, db, w, selected)
}

// Compact rewrites the current version into a single fresh segment and
// commits it as a new version: one sequential copy of the live data,
// after which superseded patch segments are collected as soon as their
// last snapshot releases. Readers are never blocked — compaction is
// just another commit.
func (s *Session) Compact(ctx context.Context) (*PatchInfo, error) {
	vs, err := s.versioned()
	if err != nil {
		return nil, err
	}
	return vs.Compact(ctx)
}
