// Command arbbench regenerates the paper's evaluation tables.
//
// Usage:
//
//	arbbench -experiment fig5  [-scale f] [-dir d]
//	arbbench -experiment fig6  [-thread treebank|acgt-flat|acgt-infix|all]
//	         [-scale f] [-sizes 5-15] [-queries 25] [-dir d] [-mem] [-workers n]
//	arbbench -experiment stream [-scale f] [-sizes 5-15] [-queries 25] [-dir d]
//	arbbench -experiment speedup [-thread acgt-infix] [-workers n]
//	         [-scale f] [-queries 5] [-dir d]
//	arbbench -experiment batch [-batchsizes 1,4,16] [-dbbytes n]
//	         [-workers n] [-dir d] [-out BENCH_batch.json]
//	arbbench -experiment prune [-dbbytes n] [-dir d] [-out BENCH_prune.json]
//	arbbench -experiment serve [-concurrency 1,8,32] [-coalesce 16]
//	         [-dbbytes n] [-dir d] [-out BENCH_serve.json]
//	arbbench -experiment patch [-patches 64] [-dbbytes n] [-dir d]
//	         [-out BENCH_patch.json]
//	arbbench -experiment compress [-codec lz|flate] [-blocksizes 65536,...]
//	         [-devmbps 64] [-dbbytes n] [-dir d] [-out BENCH_compress.json]
//	arbbench -experiment rescache [-dbbytes n] [-requests 256] [-dir d]
//	         [-out BENCH_rescache.json]
//
// compress measures block-compressed extents on the scan path: it builds
// a full-binary database of at least -dbbytes bytes, compresses copies
// at each of -blocksizes, and times the full two-scan pass over raw and
// compressed containers through a token-bucket reader simulating a
// -devmbps MB/s sequential device (page cache dropped first when
// running as root), plus an unthrottled warm-cache query comparison as
// the compute-bound no-regression check.
//
// patch measures the versioned extent store: on a generated full-binary
// database of at least -dbbytes bytes it times -patches small subtree
// mutations against recreating the database from scratch, compares the
// read throughput of a prepared query on an idle store with the same
// query while a writer commits a steady patch stream (every execution
// pins one MVCC snapshot), and times the final compaction.
//
// serve measures the query server's adaptive shared-scan coalescing: at
// each concurrency level a burst of distinct queries is fired over HTTP
// at the internal/server engine twice — batching disabled versus batches
// of up to -coalesce plans — and the report records the wall times, the
// scan pairs each mode executed, and the bytes scanned per request.
//
// prune measures selectivity-aware scan pruning on a generated
// full-binary database of at least -dbbytes bytes: hit tags are planted
// in 1%/10%/50% of its top-level subtrees, and each selectivity level
// records the bytes skipped and the speedup of pruned over unpruned
// execution (with -out as machine-readable JSON).
//
// fig5 prints the database-creation statistics table (Figure 5); fig6
// prints the query benchmark table for the chosen thread (Figure 6),
// evaluating with -workers parallel workers when n > 1; stream prints
// the one-pass-vs-two-pass ablation; speedup sweeps worker counts 1, 2,
// 4, ... up to -workers over the chosen thread (ACGT-infix by default —
// the balanced tree where the frontier divides evenly) and reports the
// parallel-disk speedup per count; batch compares N sequential
// PreparedQuery executions against one shared-scan PreparedBatch.Exec at
// each batch size over a generated database of at least -dbbytes bytes,
// and with -out also records the result as machine-readable JSON
// (queries/sec and bytes-scanned-per-query per batch size). Databases
// are created under -dir (a temporary directory by default) and reused
// within a run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"arb/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "fig6", "fig5, fig6, stream, or speedup")
	thread := flag.String("thread", "", "thread: treebank, acgt-flat, acgt-infix, or all (default: all for fig6, acgt-infix for speedup)")
	scale := flag.Float64("scale", bench.DefaultScale, "fraction of the paper's dataset sizes (1.0 = full)")
	sizesFlag := flag.String("sizes", "5-15", "query sizes, e.g. 5-15 or 5,8,12")
	queries := flag.Int("queries", 0, "random queries per size (default: 25 for fig6, 5 for speedup)")
	dir := flag.String("dir", "", "directory for databases (default: temporary)")
	inMemory := flag.Bool("mem", false, "evaluate in memory instead of on disk")
	workers := flag.Int("workers", 0, "parallel workers: fig6 evaluates with this many; speedup sweeps 1,2,4,.. up to it (0 = all CPUs for speedup, sequential for fig6)")
	batchSizes := flag.String("batchsizes", "1,4,16", "batch sizes for the batch experiment")
	dbBytes := flag.Int64("dbbytes", 64_000_000, "minimum generated database size for the batch/prune/serve experiments")
	concurrency := flag.String("concurrency", "1,8,32", "concurrency levels for the serve experiment")
	coalesce := flag.Int("coalesce", 16, "max plans per shared-scan batch (K) for the serve experiment")
	patches := flag.Int("patches", 64, "timed mutations for the patch experiment")
	codec := flag.String("codec", "lz", "codec for the compress experiment: lz or flate")
	blockSizes := flag.String("blocksizes", "", "block sizes for the compress experiment (default 65536,262144,1048576)")
	devMBps := flag.Float64("devmbps", 64, "simulated device bandwidth (MB/s) for the compress experiment")
	requests := flag.Int("requests", 256, "requests per Zipf skew level for the rescache experiment")
	out := flag.String("out", "", "also write the experiment's JSON report to this file")
	flag.Parse()

	if err := run(*experiment, *thread, *scale, *sizesFlag, *queries, *dir, *inMemory, *workers, *batchSizes, *dbBytes, *concurrency, *coalesce, *patches, *codec, *blockSizes, *devMBps, *requests, *out); err != nil {
		fmt.Fprintln(os.Stderr, "arbbench:", err)
		os.Exit(1)
	}
}

func run(experiment, thread string, scale float64, sizesFlag string, queries int, dir string, inMemory bool, workers int, batchSizes string, dbBytes int64, concurrency string, coalesce, patches int, codec, blockSizes string, devMBps float64, requests int, out string) error {
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "arbbench")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	sizes, err := parseSizes(sizesFlag)
	if err != nil {
		return err
	}

	switch experiment {
	case "compress":
		var bsizes []int
		if blockSizes != "" {
			var err error
			if bsizes, err = parseList(blockSizes); err != nil {
				return err
			}
		}
		report, err := bench.Compress(bench.CompressOpts{
			MinDBBytes: dbBytes, Dir: dir, Codec: codec,
			BlockSizes: bsizes, DeviceMBps: devMBps,
		})
		if err != nil {
			return err
		}
		bench.WriteCompress(os.Stdout, report)
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			if err := bench.WriteCompressJSON(f, report); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
		return nil

	case "patch":
		report, err := bench.Patch(bench.PatchOpts{
			MinDBBytes: dbBytes, Dir: dir, Patches: patches,
		})
		if err != nil {
			return err
		}
		bench.WritePatch(os.Stdout, report)
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			if err := bench.WritePatchJSON(f, report); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
		return nil

	case "rescache":
		report, err := bench.ResCache(bench.ResCacheOpts{
			MinDBBytes: dbBytes, Dir: dir, Requests: requests,
		})
		if err != nil {
			return err
		}
		bench.WriteResCache(os.Stdout, report)
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			if err := bench.WriteResCacheJSON(f, report); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
		return nil

	case "serve":
		levels, err := parseList(concurrency)
		if err != nil {
			return err
		}
		report, err := bench.Serve(bench.ServeOpts{
			Concurrency: levels, MinDBBytes: dbBytes, Dir: dir, BatchMax: coalesce,
		})
		if err != nil {
			return err
		}
		bench.WriteServe(os.Stdout, report)
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			if err := bench.WriteServeJSON(f, report); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
		return nil

	case "prune":
		report, err := bench.Prune(bench.PruneOpts{MinDBBytes: dbBytes, Dir: dir})
		if err != nil {
			return err
		}
		bench.WritePrune(os.Stdout, report)
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			if err := bench.WritePruneJSON(f, report); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
		return nil

	case "batch":
		bsizes, err := parseList(batchSizes)
		if err != nil {
			return err
		}
		report, err := bench.Batch(bench.BatchOpts{
			Sizes: bsizes, MinDBBytes: dbBytes, Dir: dir, Workers: workers,
		})
		if err != nil {
			return err
		}
		bench.WriteBatch(os.Stdout, report)
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			if err := bench.WriteBatchJSON(f, report); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
		return nil

	case "speedup":
		if thread == "" || thread == "all" {
			thread = "acgt-infix"
		}
		threads, err := threadsFor(thread)
		if err != nil {
			return err
		}
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		counts := []int{1}
		for w := 2; w <= workers; w *= 2 {
			counts = append(counts, w)
		}
		if last := counts[len(counts)-1]; last != workers {
			counts = append(counts, workers)
		}
		if queries == 0 {
			queries = 5
		}
		fmt.Printf("Parallel disk speedup, %d queries per worker count (scale %.4g).\n",
			queries, scale)
		for _, th := range threads {
			rows, err := bench.Speedup(th, counts, bench.SpeedupOpts{
				Queries: queries, Scale: scale, Dir: dir,
			})
			if err != nil {
				return err
			}
			bench.WriteSpeedup(os.Stdout, th, rows)
			fmt.Println()
		}
		return nil

	case "fig5":
		rows, _, err := bench.Fig5(dir, scale)
		if err != nil {
			return err
		}
		fmt.Printf("Figure 5: database creation statistics (scale %.4g).\n", scale)
		bench.WriteFig5(os.Stdout, rows)
		return nil

	case "fig6":
		if thread == "" {
			thread = "all"
		}
		threads, err := threadsFor(thread)
		if err != nil {
			return err
		}
		if queries == 0 {
			queries = 25
		}
		fmt.Printf("Figure 6: benchmark results, %d random queries per size (scale %.4g, %s).\n",
			queries, scale, evalMode(inMemory, workers))
		for _, th := range threads {
			rows, err := bench.Fig6(th, bench.Fig6Opts{
				Sizes: sizes, Queries: queries, Scale: scale, Dir: dir, InMemory: inMemory,
				Workers: workers,
			})
			if err != nil {
				return err
			}
			bench.WriteFig6(os.Stdout, th, rows)
			fmt.Println()
		}
		return nil

	case "stream":
		if queries == 0 {
			queries = 25
		}
		base := dir + "/Treebank"
		if _, err := os.Stat(base + ".arb"); err != nil {
			if _, err := bench.Fig6(bench.Treebank, bench.Fig6Opts{
				Sizes: []int{5}, Queries: 1, Scale: scale, Dir: dir,
			}); err != nil {
				return err
			}
		}
		rows, err := bench.StreamComparison(base, sizes, queries)
		if err != nil {
			return err
		}
		bench.WriteStreamComparison(os.Stdout, rows)
		return nil
	}
	return fmt.Errorf("unknown experiment %q", experiment)
}

func evalMode(inMemory bool, workers int) string {
	mode := "on disk, two linear scans"
	if inMemory {
		mode = "in memory"
	}
	if workers > 1 {
		mode = fmt.Sprintf("%s, %d workers", mode, workers)
	}
	return mode
}

func threadsFor(name string) ([]bench.Thread, error) {
	switch name {
	case "treebank":
		return []bench.Thread{bench.Treebank}, nil
	case "acgt-flat":
		return []bench.Thread{bench.ACGTFlat}, nil
	case "acgt-infix":
		return []bench.Thread{bench.ACGTInfix}, nil
	case "all":
		return []bench.Thread{bench.Treebank, bench.ACGTInfix, bench.ACGTFlat}, nil
	}
	return nil, fmt.Errorf("unknown thread %q", name)
}

// parseList parses a plain comma-separated list of positive ints (batch
// sizes; unlike query -sizes there is no range form and 1 is allowed).
func parseList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad batch size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseSizes(s string) ([]int, error) {
	if lo, hi, ok := strings.Cut(s, "-"); ok {
		a, err1 := strconv.Atoi(lo)
		b, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || a > b || a < 3 {
			return nil, fmt.Errorf("bad size range %q", s)
		}
		var out []int
		for v := a; v <= b; v++ {
			out = append(out, v)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 3 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
