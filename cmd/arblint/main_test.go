package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestRepoIsClean is the gate the CI script relies on: the whole module
// must pass every arblint analyzer with zero findings.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs arblint over the whole module")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/arblint", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("arblint reported findings (or failed):\n%s\nerror: %v", out, err)
	}
	if len(out) != 0 {
		t.Fatalf("arblint exited zero but produced output:\n%s", out)
	}
}

// TestNoDeferredDebt asserts the module carries no arblint:todo markers:
// deferred-debt waivers are paid down, not accumulated. A todo is only
// acceptable within a PR that also files the work it defers; landing one
// permanently requires changing this test, which is the point.
func TestNoDeferredDebt(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs arblint over the whole module")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/arblint", "-todos", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("arblint -todos failed:\n%s\nerror: %v", out, err)
	}
	if len(out) != 0 {
		t.Fatalf("module carries arblint:todo markers:\n%s", out)
	}
}
