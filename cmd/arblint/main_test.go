package main_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestRepoIsClean is the gate the CI script relies on: the whole module
// must pass every arblint analyzer with zero findings.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs arblint over the whole module")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/arblint", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("arblint reported findings (or failed):\n%s\nerror: %v", out, err)
	}
	if len(out) != 0 {
		t.Fatalf("arblint exited zero but produced output:\n%s", out)
	}
}

// TestInterproceduralAnalyzersClean pins the PR-7..9 subsystems
// (vstore snapshots, the coalescer's atomics, server/parallel
// goroutines, the module's mutexes) as clean under the four
// interprocedural analyzers specifically, independent of the rest of
// the suite.
func TestInterproceduralAnalyzersClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs arblint over the whole module")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/arblint",
		"-analyzers", "snappin,atomicmix,goroleak,lockorder", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("interprocedural analyzers reported findings (or failed):\n%s\nerror: %v", out, err)
	}
}

// TestRosterAndJSON asserts the advertised suite is the full nine and
// that the machine-readable path stays wired: -json with the committed
// baseline must emit an empty JSON array on a clean tree.
func TestRosterAndJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs arblint")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/arblint", "-list")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("arblint -list failed:\n%s\nerror: %v", out, err)
	}
	for _, name := range []string{
		"ctxflow", "lockdiscipline", "tmpcleanup", "noshims", "closecheck",
		"snappin", "atomicmix", "goroleak", "lockorder",
	} {
		if !strings.Contains(string(out), name) {
			t.Errorf("arblint -list is missing analyzer %s:\n%s", name, out)
		}
	}

	cmd = exec.Command("go", "run", "./cmd/arblint", "-json", "-baseline", ".arblint-baseline.json", "./...")
	cmd.Dir = root
	jsonOut, err := cmd.Output()
	if err != nil {
		t.Fatalf("arblint -json -baseline failed: %v", err)
	}
	var findings []map[string]any
	if err := json.Unmarshal(jsonOut, &findings); err != nil {
		t.Fatalf("arblint -json emitted invalid JSON: %v\n%s", err, jsonOut)
	}
	if len(findings) != 0 {
		t.Fatalf("clean tree with baseline applied still has findings:\n%s", jsonOut)
	}
}

// TestNoDeferredDebt asserts the module carries no arblint:todo markers:
// deferred-debt waivers are paid down, not accumulated. A todo is only
// acceptable within a PR that also files the work it defers; landing one
// permanently requires changing this test, which is the point.
func TestNoDeferredDebt(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs arblint over the whole module")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/arblint", "-todos", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("arblint -todos failed:\n%s\nerror: %v", out, err)
	}
	if len(out) != 0 {
		t.Fatalf("module carries arblint:todo markers:\n%s", out)
	}
}
