// Command arblint runs the repo's static-analysis suite: nine analyzers
// that mechanically enforce the engine's concurrency, cancellation and
// cleanup invariants (see internal/lint/analyzers).
//
// Standalone over package patterns (the CI mode):
//
//	go run ./cmd/arblint ./...
//	go run ./cmd/arblint -analyzers ctxflow,noshims ./internal/core
//	go run ./cmd/arblint -todos ./...      # list tracked-debt markers
//	go run ./cmd/arblint -json ./...       # machine-readable findings
//
// The baseline workflow separates accepted debt from regressions:
//
//	go run ./cmd/arblint -writebaseline .arblint-baseline.json ./...
//	go run ./cmd/arblint -baseline .arblint-baseline.json ./...
//
// The first records today's findings; the second fails only on findings
// beyond them — new debt breaks CI while pre-existing, reviewed debt
// (tracked in-source with //arblint:todo) stays visible in the
// committed baseline file.
//
// It also speaks the unitchecker protocol, so it can ride go vet:
//
//	go vet -vettool=$(which arblint) ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"arb/internal/lint"
	"arb/internal/lint/analyzers"
)

func main() {
	// `go vet -vettool` probes the tool's identity with -V=full before
	// handing it package configs; answer and get out of the way.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "-V" || strings.HasPrefix(arg, "-V=") {
			fmt.Printf("arblint version devel\n")
			return
		}
	}

	var (
		sel       = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		list      = flag.Bool("list", false, "list the analyzers and exit")
		todos     = flag.Bool("todos", false, "list //arblint:todo tracked-debt markers instead of running analyzers")
		jsonOut   = flag.Bool("json", false, "emit findings as JSON on stdout")
		baseline  = flag.String("baseline", "", "accepted-findings file: only findings beyond it fail")
		writeBase = flag.String("writebaseline", "", "record current findings to this file and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analyzers.All {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	active := analyzers.All
	if *sel != "" {
		active = nil
		for _, name := range strings.Split(*sel, ",") {
			a := analyzers.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "arblint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			active = append(active, a)
		}
	}

	args := flag.Args()

	// go vet invokes the tool once per package with a single .cfg file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVet(args[0], active)
		return
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := lint.Load(".", args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
		os.Exit(2)
	}

	if *todos {
		for _, td := range lint.Todos(pkgs) {
			fmt.Printf("%s: [%s] %s\n", td.Pos, strings.Join(td.Analyzers, ","), td.Reason)
		}
		return
	}

	diags, err := lint.Run(pkgs, active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
		os.Exit(2)
	}

	root, err := lint.ModuleRoot(".")
	if err != nil {
		root = ""
	}

	if *writeBase != "" {
		if err := lint.WriteBaseline(*writeBase, root, diags); err != nil {
			fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "arblint: baseline %s records %d finding(s)\n", *writeBase, len(diags))
		return
	}

	if *baseline != "" {
		b, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
			os.Exit(2)
		}
		var absorbed int
		diags, absorbed = b.Filter(root, diags)
		if absorbed > 0 {
			fmt.Fprintf(os.Stderr, "arblint: %d baselined finding(s) suppressed; fix them to shrink %s\n", absorbed, *baseline)
		}
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, root, diags); err != nil {
			fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "arblint: %d problem(s)\n", len(diags))
		os.Exit(1)
	}
}

// diagJSON is the machine-readable finding shape for -json.
type diagJSON struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative when possible
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, root string, diags []lint.Diagnostic) error {
	out := make([]diagJSON, 0, len(diags))
	for _, d := range diags {
		out = append(out, diagJSON{
			Analyzer: d.Analyzer,
			File:     lint.RelFile(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// runVet handles one unitchecker-protocol invocation from go vet.
func runVet(cfg string, active []*lint.Analyzer) {
	pkg, vetxOnly, done, err := lint.LoadVetConfig(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
		os.Exit(2)
	}
	if done != nil {
		if err := done(); err != nil {
			fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
			os.Exit(2)
		}
	}
	if pkg == nil || vetxOnly {
		return
	}
	diags, err := lint.Run([]*lint.Package{pkg}, active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}
