// Command arblint runs the repo's static-analysis suite: five analyzers
// that mechanically enforce the engine's concurrency, cancellation and
// cleanup invariants (see internal/lint/analyzers).
//
// Standalone over package patterns (the CI mode):
//
//	go run ./cmd/arblint ./...
//	go run ./cmd/arblint -analyzers ctxflow,noshims ./internal/core
//	go run ./cmd/arblint -todos ./...      # list tracked-debt markers
//
// It also speaks the unitchecker protocol, so it can ride go vet:
//
//	go vet -vettool=$(which arblint) ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"arb/internal/lint"
	"arb/internal/lint/analyzers"
)

func main() {
	// `go vet -vettool` probes the tool's identity with -V=full before
	// handing it package configs; answer and get out of the way.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "-V" || strings.HasPrefix(arg, "-V=") {
			fmt.Printf("arblint version devel\n")
			return
		}
	}

	var (
		sel   = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		list  = flag.Bool("list", false, "list the analyzers and exit")
		todos = flag.Bool("todos", false, "list //arblint:todo tracked-debt markers instead of running analyzers")
	)
	flag.Parse()

	if *list {
		for _, a := range analyzers.All {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	active := analyzers.All
	if *sel != "" {
		active = nil
		for _, name := range strings.Split(*sel, ",") {
			a := analyzers.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "arblint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			active = append(active, a)
		}
	}

	args := flag.Args()

	// go vet invokes the tool once per package with a single .cfg file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVet(args[0], active)
		return
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := lint.Load(".", args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
		os.Exit(2)
	}

	if *todos {
		for _, td := range lint.Todos(pkgs) {
			fmt.Printf("%s: [%s] %s\n", td.Pos, strings.Join(td.Analyzers, ","), td.Reason)
		}
		return
	}

	diags, err := lint.Run(pkgs, active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "arblint: %d problem(s)\n", len(diags))
		os.Exit(1)
	}
}

// runVet handles one unitchecker-protocol invocation from go vet.
func runVet(cfg string, active []*lint.Analyzer) {
	pkg, vetxOnly, done, err := lint.LoadVetConfig(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
		os.Exit(2)
	}
	if done != nil {
		if err := done(); err != nil {
			fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
			os.Exit(2)
		}
	}
	if pkg == nil || vetxOnly {
		return
	}
	diags, err := lint.Run([]*lint.Package{pkg}, active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arblint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}
