// Command arb is the command-line interface to the Arb query engine:
// create .arb databases from XML, evaluate TMNF or Core XPath queries
// over them in two linear scans, and emit results.
//
// Usage:
//
//	arb create <base> [file.xml]       build base.arb/base.lab from XML (stdin default)
//	arb query  <base> -q <program>     evaluate a TMNF program (Arb syntax)
//	arb query  <base> -xpath <expr>    evaluate a Core XPath query (incl. not(..), on disk)
//	arb query  <base> -f queries.txt -batch   evaluate a whole workload in shared scans
//	arb cat    <base>                  write the database back as XML
//	arb stats  <base>                  print database statistics
//
// Query output: -count prints the number of selected nodes per query
// predicate (default); -ids prints the selected preorder node ids; -mark
// re-emits the document with selected nodes wrapped in <arb:selected>
// markup (the system's default output mode described in Section 6.3).
//
// Queries run through the library's Session/PreparedQuery API: one
// prepared query per invocation, executed with arb.ExecOpts. -j N
// evaluates with N parallel workers (0 = all CPUs): the database's
// subtree index cuts the .arb file into a frontier of chunk byte ranges
// that workers stream independently, still two linear scans' worth of
// I/O in aggregate. It pays off on large, balanced documents; -mark
// output is inherently sequential and ignores -j. -timeout bounds the
// evaluation: when the deadline passes, the scans abort promptly, all
// temporary files are cleaned up, and the command exits non-zero.
//
// Selectivity-aware pruning is on by default: the scans seek past whole
// subtrees whose label summary (in the .idx sidecar) proves them
// irrelevant to the query, so selective queries read far less than two
// full scans — bit-identical results either way. -noprune forces the
// full scans (useful for benchmarking and for debugging a suspect
// sidecar); -v reports how many bytes pruning skipped. Marked output
// (-mark) reads everything regardless, since every node is re-emitted.
//
// Batch mode (-f file -batch) reads one query per line — TMNF by
// default, Core XPath with an "xpath:" prefix, blank lines and #
// comments ignored — and evaluates the whole workload through
// Session.PrepareBatch: every query shares one pair of linear scans per
// round instead of paying its own, and the per-query counts print in
// input order. -ids and -mark are per-query output modes and do not
// combine with -batch.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"arb"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "create":
		err = create(os.Args[2:])
	case "query":
		err = query(os.Args[2:])
	case "cat":
		err = cat(os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "arb:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  arb create <base> [file.xml]
  arb query  <base> (-q <program> | -f <program.tmnf> | -xpath <expr>) [-count|-ids|-mark] [-j N] [-timeout d] [-noprune]
  arb query  <base> -f <queries.txt> -batch [-j N] [-timeout d] [-noprune]
  arb cat    <base>
  arb stats  <base>
`)
	os.Exit(2)
}

func create(args []string) error {
	if len(args) < 1 {
		usage()
	}
	base := args[0]
	var r io.Reader = os.Stdin
	if len(args) > 1 {
		f, err := os.Open(args[1])
		if err != nil {
			return err
		}
		defer f.Close()
		r = bufio.NewReaderSize(f, 1<<16)
	}
	db, stats, err := arb.CreateDB(base, r)
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Printf("created %s.arb: %d element nodes, %d character nodes, %d tags, %.2fs\n",
		base, stats.ElemNodes, stats.CharNodes, stats.Tags, stats.Duration.Seconds())
	fmt.Printf(".arb %d bytes, .lab %d bytes, temporary .evt %d bytes\n",
		stats.ArbBytes, stats.LabBytes, stats.EvtBytes)
	return nil
}

func query(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	progSrc := fs.String("q", "", "TMNF program (Arb surface syntax)")
	progFile := fs.String("f", "", "file containing a TMNF program")
	xpathSrc := fs.String("xpath", "", "Core XPath query")
	ids := fs.Bool("ids", false, "print selected node ids")
	mark := fs.Bool("mark", false, "emit the document with selected nodes marked up")
	batch := fs.Bool("batch", false, "treat -f as a workload file (one query per line) and run it in shared scans")
	verbose := fs.Bool("v", false, "print engine statistics")
	jobs := fs.Int("j", 1, "parallel workers (0 = all CPUs, 1 = sequential)")
	timeout := fs.Duration("timeout", 0, "abort the evaluation after this long (0 = no limit)")
	noprune := fs.Bool("noprune", false, "disable selectivity-aware scan pruning (read every byte even when the index proves subtrees irrelevant)")
	if len(args) < 1 {
		usage()
	}
	base := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sess, err := arb.OpenSession(base)
	if err != nil {
		return err
	}
	defer sess.Close()

	// Workers: the flag speaks CLI (0 = all CPUs), ExecOpts speaks
	// library (negative = all CPUs, 0 = sequential).
	workers := *jobs
	if workers == 0 {
		workers = -1
	}

	if *batch {
		if *progFile == "" {
			return fmt.Errorf("-batch needs a workload file (-f queries.txt)")
		}
		if *progSrc != "" || *xpathSrc != "" {
			return fmt.Errorf("-batch runs the workload file only; put the -q/-xpath query on its own line in %s", *progFile)
		}
		if *ids || *mark {
			return fmt.Errorf("-ids and -mark are per-query output modes; -batch prints counts")
		}
		return runBatch(ctx, sess, *progFile, workers, *noprune, *verbose, *timeout)
	}

	var pq *arb.PreparedQuery
	var prog *arb.Program
	switch {
	case *progFile != "":
		b, err := os.ReadFile(*progFile)
		if err != nil {
			return err
		}
		if prog, err = arb.ParseProgram(string(b)); err != nil {
			return err
		}
	case *progSrc != "":
		if prog, err = arb.ParseProgram(*progSrc); err != nil {
			return err
		}
	case *xpathSrc != "":
		q, err := arb.ParseXPath(*xpathSrc)
		if err != nil {
			return err
		}
		if pq, err = sess.PrepareXPath(q); err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -q, -f, -xpath is required")
	}
	if pq == nil {
		if pq, err = sess.Prepare(prog); err != nil {
			return err
		}
	}

	opts := arb.ExecOpts{Workers: workers, Stats: *verbose, NoPrune: *noprune}
	var markOut *bufio.Writer
	if *mark {
		// The marked document streams out during the final pass itself
		// (Section 6.3) — still exactly two scans.
		markOut = bufio.NewWriterSize(os.Stdout, 1<<16)
		opts.MarkTo = markOut
	}
	res, prof, err := pq.Exec(ctx, opts)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("query timed out after %v (temporary files cleaned up); raise -timeout or add workers with -j", *timeout)
		}
		return err
	}
	if markOut != nil {
		if err := markOut.Flush(); err != nil {
			return err
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "phase 1 (bottom-up): %v, %d transitions; phase 2 (top-down): %v, %d transitions; %d passes, %d workers, temp %d bytes\n",
			prof.Engine.Phase1Time, prof.Engine.BUTransitions, prof.Engine.Phase2Time, prof.Engine.TDTransitions,
			prof.Passes, prof.Workers, prof.Disk.StateBytes)
		if skipped := prof.SkippedBytes(); skipped > 0 || prof.Engine.PrunedNodes > 0 {
			fmt.Fprintf(os.Stderr, "pruning: skipped %d data bytes (%d nodes proven irrelevant); -noprune disables\n",
				skipped, prof.Engine.PrunedNodes)
		}
	}
	switch {
	case *mark:
		return nil
	case *ids:
		return printIDs(res, pq.Queries()[0])
	default:
		for _, q := range pq.Queries() {
			fmt.Printf("%s: %d nodes selected\n", pq.Program().PredName(q), res.Count(q))
		}
	}
	return nil
}

// runBatch evaluates a workload file as one shared-scan batch: every
// non-empty, non-# line is a query (TMNF by default, Core XPath with an
// "xpath:" prefix), and all of them execute during a single pair of
// linear scans per scheduled round.
func runBatch(ctx context.Context, sess *arb.Session, path string, workers int, noprune, verbose bool, timeout time.Duration) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var items []any
	var srcs []string
	for ln, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if expr, ok := strings.CutPrefix(line, "xpath:"); ok {
			q, err := arb.ParseXPath(strings.TrimSpace(expr))
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, ln+1, err)
			}
			items = append(items, q)
		} else {
			p, err := arb.ParseProgram(line)
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, ln+1, err)
			}
			items = append(items, p)
		}
		srcs = append(srcs, line)
	}
	if len(items) == 0 {
		return fmt.Errorf("%s holds no queries", path)
	}
	pb, err := sess.PrepareBatch(items...)
	if err != nil {
		return err
	}
	res, prof, err := pb.Exec(ctx, arb.ExecOpts{Workers: workers, Stats: verbose, NoPrune: noprune})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("batch timed out after %v (temporary files cleaned up); raise -timeout or add workers with -j", timeout)
		}
		return err
	}
	for i := range res {
		for _, q := range pb.Queries(i) {
			fmt.Printf("%s %s: %d nodes selected\n", srcs[i], pb.Program(i).PredName(q), res[i].Count(q))
		}
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "%d queries, %d shared scan pair(s); phase 1: %v, phase 2: %v; %d workers, temp %d bytes; %.0f bytes scanned per query\n",
			len(items), prof.Passes, prof.Engine.Phase1Time, prof.Engine.Phase2Time,
			prof.Workers, prof.Disk.StateBytes,
			float64(prof.Disk.Phase1.Bytes+prof.Disk.Phase2.Bytes)/float64(len(items)))
	}
	return nil
}

// printIDs streams the selected preorder ids to stdout, surfacing write
// errors (a closed pipe must fail the command, not silently truncate).
func printIDs(res *arb.Result, q arb.Pred) error {
	w := bufio.NewWriterSize(os.Stdout, 1<<16)
	var werr error
	res.Walk(q, func(v arb.NodeID) bool {
		if _, err := fmt.Fprintln(w, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return w.Flush()
}

func cat(args []string) error {
	if len(args) < 1 {
		usage()
	}
	db, err := arb.OpenDB(args[0])
	if err != nil {
		return err
	}
	defer db.Close()
	w := bufio.NewWriterSize(os.Stdout, 1<<16)
	if err := arb.EmitXML(db, w, nil); err != nil {
		return err
	}
	return w.Flush()
}

func stats(args []string) error {
	if len(args) < 1 {
		usage()
	}
	db, err := arb.OpenDB(args[0])
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Printf("%s: %d nodes, %d tags, %d bytes\n", args[0], db.N, db.Names.Len(), db.N*2)
	return nil
}
