// Command arb is the command-line interface to the Arb query engine:
// create .arb databases from XML, evaluate TMNF or Core XPath queries
// over them in two linear scans, and emit results.
//
// Usage:
//
//	arb create <base> [file.xml]       build base.arb/base.lab from XML (stdin default)
//	arb create <base> -compress        same, then rewrite .arb as a block-compressed container
//	arb query  <base> -q <program>     evaluate a TMNF program (Arb syntax)
//	arb query  <base> -xpath <expr>    evaluate a Core XPath query (incl. not(..), on disk)
//	arb query  <base> -f queries.txt -batch   evaluate a whole workload in shared scans
//	arb serve  <base> [-addr :8337]    serve queries over HTTP with plan caching + coalescing
//	arb patch  <base> -op replace -node N -xml '<frag/>'   mutate a subtree, commit a new version
//	arb compact <base>                 rewrite the live version into one segment
//	arb cat    <base>                  write the database back as XML
//	arb stats  <base>                  print database statistics
//
// Patching: `arb patch` applies one copy-on-write mutation — replace,
// delete or insert-child — to the versioned store (internal/vstore),
// writing only the new subtree bytes and committing by atomic manifest
// rename; the first patch of a plain database creates its .arbm
// manifest and leaves the original .arb untouched. A patched database
// opens versioned everywhere (query, serve, cat, stats): queries read
// MVCC snapshots, and `arb serve` accepts POST /patch while queries in
// flight keep the version they pinned. `arb compact` folds the
// accumulated patch segments back into a single fresh segment.
//
// Query output: -count prints the number of selected nodes per query
// predicate (default); -ids prints the selected preorder node ids; -mark
// re-emits the document with selected nodes wrapped in <arb:selected>
// markup (the system's default output mode described in Section 6.3).
//
// Queries run through the library's Session/PreparedQuery API: one
// prepared query per invocation, executed with arb.ExecOpts. -j N
// evaluates with N parallel workers (0 = all CPUs): the database's
// subtree index cuts the .arb file into a frontier of chunk byte ranges
// that workers stream independently, still two linear scans' worth of
// I/O in aggregate. It pays off on large, balanced documents; -mark
// output is inherently sequential and ignores -j. -timeout bounds the
// evaluation: when the deadline passes, the scans abort promptly, all
// temporary files are cleaned up, and the command exits non-zero.
//
// Selectivity-aware pruning is on by default: the scans seek past whole
// subtrees whose label summary (in the .idx sidecar) proves them
// irrelevant to the query, so selective queries read far less than two
// full scans — bit-identical results either way. -noprune forces the
// full scans (useful for benchmarking and for debugging a suspect
// sidecar); -v reports how many bytes pruning skipped. Marked output
// (-mark) reads everything regardless, since every node is re-emitted.
//
// Batch mode (-f file -batch) reads one query per line — TMNF by
// default, Core XPath with an "xpath:" prefix, blank lines and #
// comments ignored — and evaluates the whole workload through
// Session.PrepareBatch: every query shares one pair of linear scans per
// round instead of paying its own, and the per-query counts print in
// input order. -ids and -mark are per-query output modes and do not
// combine with -batch.
//
// Serve mode (`arb serve <base>`) keeps the session open and fields
// queries over HTTP (POST /query with {"query": "..."}; GET
// /query?q=...; GET /stats; GET /healthz), with an LRU plan cache keyed
// by normalized query text and an adaptive coalescer folding concurrent
// requests into shared-scan batches — see internal/server. SIGINT and
// SIGTERM drain the listener gracefully; the same signals interrupt a
// running `arb query`, which then cleans up its temporary files and
// exits non-zero.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"arb"
	"arb/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// One interruption contract for every subcommand: the first SIGINT or
	// SIGTERM cancels ctx — running scans abort promptly and remove their
	// temporary state/aux files, the server drains — and a second signal
	// kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// Once the first signal has cancelled ctx, unregister: the second
		// signal then terminates the process the default way instead of
		// being swallowed while a drain or cleanup is still running.
		<-ctx.Done()
		stop()
	}()
	var err error
	switch os.Args[1] {
	case "create":
		err = create(os.Args[2:])
	case "query":
		err = query(ctx, os.Args[2:])
	case "serve":
		err = serve(ctx, os.Args[2:])
	case "patch":
		err = patch(ctx, os.Args[2:])
	case "compact":
		err = compact(ctx, os.Args[2:])
	case "cat":
		err = cat(ctx, os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "arb:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  arb create <base> [-compress] [-codec lz|flate] [-blocksize N] [file.xml]
  arb query  <base> (-q <program> | -f <program.tmnf> | -xpath <expr>) [-count|-ids|-mark] [-j N] [-timeout d] [-noprune] [-rescache SIZE]
  arb query  <base> -f <queries.txt> -batch [-j N] [-timeout d] [-noprune]
  arb serve  <base> [-addr :8337] [-window d] [-batch K] [-inflight N] [-cache N] [-rescache SIZE] [-maxqueue N] [-j N] [-timeout d] [-drain d] [-noprune]
  arb patch  <base> -op (replace|delete|insert-child) -node N [-xml <fragment> | -f fragment.xml]
  arb compact <base>
  arb cat    <base>
  arb stats  <base>
`)
	os.Exit(2)
}

func create(args []string) error {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	compress := fs.Bool("compress", false, "rewrite the finished database as a block-compressed container")
	codec := fs.String("codec", "lz", "compression codec with -compress: lz (fast decode) or flate (tighter)")
	blockSize := fs.Int("blocksize", 0, "compressed block size in bytes with -compress (0 = default)")
	if len(args) < 1 {
		usage()
	}
	base := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = bufio.NewReaderSize(f, 1<<16)
	}
	db, stats, err := arb.CreateDB(base, r)
	if err != nil {
		return err
	}
	if err := db.Close(); err != nil {
		return err
	}
	fmt.Printf("created %s.arb: %d element nodes, %d character nodes, %d tags, %.2fs\n",
		base, stats.ElemNodes, stats.CharNodes, stats.Tags, stats.Duration.Seconds())
	fmt.Printf(".arb %d bytes, .lab %d bytes, temporary .evt %d bytes\n",
		stats.ArbBytes, stats.LabBytes, stats.EvtBytes)
	if *compress {
		info, err := arb.CompressDB(base, *codec, *blockSize)
		if err != nil {
			return err
		}
		fmt.Printf("compressed with %s: %d -> %d bytes (%.2fx, %d blocks of %d)\n",
			arb.CodecName(info.Codec), info.LogicalBytes, info.PhysBytes, info.Ratio(), info.Blocks, info.BlockSize)
	}
	return nil
}

// serve runs the long-lived query server over the database at base,
// draining gracefully when ctx is cancelled (SIGINT/SIGTERM).
func serve(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8337", "HTTP listen address")
	window := fs.Duration("window", 0, "coalescing gather window (0 = auto-tune from observed scan durations)")
	batchMax := fs.Int("batch", 16, "max distinct plans per shared-scan batch (K)")
	inflight := fs.Int("inflight", 2, "max concurrently running executions")
	cacheSize := fs.Int("cache", 256, "plan cache capacity (distinct queries)")
	resCache := fs.String("rescache", "0", "result cache byte budget, e.g. 64m (0 = disabled)")
	maxQueue := fs.Int("maxqueue", 0, "max queries queued for execution before answering 429 (0 = unbounded)")
	jobs := fs.Int("j", 1, "parallel workers per execution (0 = all CPUs, 1 = sequential)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request deadline")
	drain := fs.Duration("drain", 10*time.Second, "grace period for in-flight requests on shutdown")
	readTimeout := fs.Duration("readtimeout", 10*time.Second, "deadline for reading each request's headers (guards the listener against stalled clients)")
	noprune := fs.Bool("noprune", false, "disable selectivity-aware scan pruning")
	if len(args) < 1 {
		usage()
	}
	base := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	workers := *jobs
	if workers == 0 {
		workers = -1
	}
	resBytes, err := parseSize(*resCache)
	if err != nil {
		return fmt.Errorf("-rescache: %w", err)
	}

	sess, err := arb.OpenSession(base)
	if err != nil {
		return err
	}
	defer sess.Close()

	srv := server.New(ctx, sess, server.Config{
		Window:        *window,
		BatchMax:      *batchMax,
		MaxInflight:   *inflight,
		CacheSize:     *cacheSize,
		Workers:       workers,
		Timeout:       *timeout,
		NoPrune:       *noprune,
		ResCacheBytes: resBytes,
		MaxQueue:      *maxQueue,
	})
	defer srv.Close()

	// Listen before announcing, so "serving ..." means requests are
	// accepted (smoke tests and process supervisors key off the line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := newHTTPServer(srv.Handler(), *readTimeout)
	windowDesc := "auto"
	if *window > 0 {
		windowDesc = window.String()
	}
	fmt.Printf("arb: serving %s on %s (batch %d, window %s, inflight %d, cache %d, rescache %d)\n",
		base, ln.Addr(), *batchMax, windowDesc, *inflight, *cacheSize, resBytes)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight handlers finish their
	// (possibly coalesced) executions, then cancel whatever remains.
	st := srv.Snapshot()
	fmt.Printf("arb: draining (served %d requests, %d groups, cache hit rate %.0f%%)\n",
		st.Requests, st.Coalescer.Groups, 100*st.HitRate)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		srv.Close() // aborts the stragglers' scans
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("arb: drained")
	return nil
}

// parseSize parses a byte size with an optional k/m/g suffix (powers of
// 1024), e.g. "64m". The empty string and "0" are zero.
func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q (want N, Nk, Nm or Ng)", s)
	}
	return n * mult, nil
}

// newHTTPServer builds the serve-mode HTTP server with connection
// hygiene the zero value lacks: without ReadHeaderTimeout a client that
// opens a socket and never finishes its headers parks a goroutine (and
// under -inflight limits, eventually the whole listener) forever, and
// without IdleTimeout dead keep-alive connections accumulate. The
// header deadline is the -readtimeout flag; idle connections are given
// a generous fixed multiple so keep-alive still helps well-behaved
// clients.
func newHTTPServer(h http.Handler, readTimeout time.Duration) *http.Server {
	if readTimeout <= 0 {
		readTimeout = 10 * time.Second
	}
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readTimeout,
		IdleTimeout:       12 * readTimeout,
	}
}

func query(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	progSrc := fs.String("q", "", "TMNF program (Arb surface syntax)")
	progFile := fs.String("f", "", "file containing a TMNF program")
	xpathSrc := fs.String("xpath", "", "Core XPath query")
	ids := fs.Bool("ids", false, "print selected node ids")
	mark := fs.Bool("mark", false, "emit the document with selected nodes marked up")
	batch := fs.Bool("batch", false, "treat -f as a workload file (one query per line) and run it in shared scans")
	verbose := fs.Bool("v", false, "print engine statistics")
	jobs := fs.Int("j", 1, "parallel workers (0 = all CPUs, 1 = sequential)")
	timeout := fs.Duration("timeout", 0, "abort the evaluation after this long (0 = no limit)")
	noprune := fs.Bool("noprune", false, "disable selectivity-aware scan pruning (read every byte even when the index proves subtrees irrelevant)")
	resCache := fs.String("rescache", "0", "result cache byte budget, e.g. 64m (0 = disabled; caches completed results within this process)")
	if len(args) < 1 {
		usage()
	}
	base := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sess, err := arb.OpenSession(base)
	if err != nil {
		return err
	}
	defer sess.Close()
	resBytes, err := parseSize(*resCache)
	if err != nil {
		return fmt.Errorf("-rescache: %w", err)
	}
	if resBytes > 0 {
		sess.SetResultCache(resBytes)
	}

	// Workers: the flag speaks CLI (0 = all CPUs), ExecOpts speaks
	// library (negative = all CPUs, 0 = sequential).
	workers := *jobs
	if workers == 0 {
		workers = -1
	}

	if *batch {
		if *progFile == "" {
			return fmt.Errorf("-batch needs a workload file (-f queries.txt)")
		}
		if *progSrc != "" || *xpathSrc != "" {
			return fmt.Errorf("-batch runs the workload file only; put the -q/-xpath query on its own line in %s", *progFile)
		}
		if *ids || *mark {
			return fmt.Errorf("-ids and -mark are per-query output modes; -batch prints counts")
		}
		return runBatch(ctx, sess, *progFile, workers, *noprune, *verbose, *timeout)
	}

	var pq *arb.PreparedQuery
	var prog *arb.Program
	switch {
	case *progFile != "":
		b, err := os.ReadFile(*progFile)
		if err != nil {
			return err
		}
		if prog, err = arb.ParseProgram(string(b)); err != nil {
			return err
		}
	case *progSrc != "":
		if prog, err = arb.ParseProgram(*progSrc); err != nil {
			return err
		}
	case *xpathSrc != "":
		q, err := arb.ParseXPath(*xpathSrc)
		if err != nil {
			return err
		}
		if pq, err = sess.PrepareXPath(q); err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -q, -f, -xpath is required")
	}
	if pq == nil {
		if pq, err = sess.Prepare(prog); err != nil {
			return err
		}
	}

	opts := arb.ExecOpts{Workers: workers, Stats: *verbose, NoPrune: *noprune, ResultCache: resBytes > 0}
	var markOut *bufio.Writer
	if *mark {
		// The marked document streams out during the final pass itself
		// (Section 6.3) — still exactly two scans.
		markOut = bufio.NewWriterSize(os.Stdout, 1<<16)
		opts.MarkTo = markOut
	}
	res, prof, err := pq.Exec(ctx, opts)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			return fmt.Errorf("query timed out after %v (temporary files cleaned up); raise -timeout or add workers with -j", *timeout)
		case errors.Is(err, context.Canceled):
			return fmt.Errorf("query interrupted (temporary files cleaned up)")
		}
		return err
	}
	if markOut != nil {
		if err := markOut.Flush(); err != nil {
			return err
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "phase 1 (bottom-up): %v, %d transitions; phase 2 (top-down): %v, %d transitions; %d passes, %d workers, temp %d bytes\n",
			prof.Engine.Phase1Time, prof.Engine.BUTransitions, prof.Engine.Phase2Time, prof.Engine.TDTransitions,
			prof.Passes, prof.Workers, prof.Disk.StateBytes)
		if skipped := prof.SkippedBytes(); skipped > 0 || prof.Engine.PrunedNodes > 0 {
			fmt.Fprintf(os.Stderr, "pruning: skipped %d data bytes (%d nodes proven irrelevant); -noprune disables\n",
				skipped, prof.Engine.PrunedNodes)
		}
	}
	switch {
	case *mark:
		return nil
	case *ids:
		return printIDs(res, pq.Queries()[0])
	default:
		for _, q := range pq.Queries() {
			fmt.Printf("%s: %d nodes selected\n", pq.Program().PredName(q), res.Count(q))
		}
	}
	return nil
}

// runBatch evaluates a workload file as one shared-scan batch: every
// non-empty, non-# line is a query (TMNF by default, Core XPath with an
// "xpath:" prefix), and all of them execute during a single pair of
// linear scans per scheduled round.
func runBatch(ctx context.Context, sess *arb.Session, path string, workers int, noprune, verbose bool, timeout time.Duration) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var items []any
	var srcs []string
	for ln, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if expr, ok := strings.CutPrefix(line, "xpath:"); ok {
			q, err := arb.ParseXPath(strings.TrimSpace(expr))
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, ln+1, err)
			}
			items = append(items, q)
		} else {
			p, err := arb.ParseProgram(line)
			if err != nil {
				return fmt.Errorf("%s:%d: %w", path, ln+1, err)
			}
			items = append(items, p)
		}
		srcs = append(srcs, line)
	}
	if len(items) == 0 {
		return fmt.Errorf("%s holds no queries", path)
	}
	pb, err := sess.PrepareBatch(items...)
	if err != nil {
		return err
	}
	res, prof, err := pb.Exec(ctx, arb.ExecOpts{Workers: workers, Stats: verbose, NoPrune: noprune})
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			return fmt.Errorf("batch timed out after %v (temporary files cleaned up); raise -timeout or add workers with -j", timeout)
		case errors.Is(err, context.Canceled):
			return fmt.Errorf("batch interrupted (temporary files cleaned up)")
		}
		return err
	}
	for i := range res {
		for _, q := range pb.Queries(i) {
			fmt.Printf("%s %s: %d nodes selected\n", srcs[i], pb.Program(i).PredName(q), res[i].Count(q))
		}
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "%d queries, %d shared scan pair(s); phase 1: %v, phase 2: %v; %d workers, temp %d bytes; %.0f bytes scanned per query\n",
			len(items), prof.Passes, prof.Engine.Phase1Time, prof.Engine.Phase2Time,
			prof.Workers, prof.Disk.StateBytes,
			float64(prof.Disk.Phase1.Bytes+prof.Disk.Phase2.Bytes)/float64(len(items)))
	}
	return nil
}

// printIDs streams the selected preorder ids to stdout, surfacing write
// errors (a closed pipe must fail the command, not silently truncate).
func printIDs(res *arb.Result, q arb.Pred) error {
	w := bufio.NewWriterSize(os.Stdout, 1<<16)
	var werr error
	res.Walk(q, func(v arb.NodeID) bool {
		if _, err := fmt.Fprintln(w, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return w.Flush()
}

// patch applies one copy-on-write mutation and commits a new version.
// The first patch of a plain database creates its .arbm manifest; the
// original .arb is never rewritten.
func patch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("patch", flag.ExitOnError)
	op := fs.String("op", "", "operation: replace, delete or insert-child")
	node := fs.Int64("node", -1, "target node (preorder id in the current version)")
	xmlSrc := fs.String("xml", "", "fragment XML (replace and insert-child)")
	xmlFile := fs.String("f", "", "file containing the fragment XML")
	if len(args) < 1 {
		usage()
	}
	base := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *node < 0 {
		return fmt.Errorf("-node is required (preorder id, 0 = document root)")
	}
	var frag *arb.Tree
	switch {
	case *xmlSrc != "" && *xmlFile != "":
		return fmt.Errorf("-xml and -f are mutually exclusive")
	case *xmlSrc != "":
		t, err := arb.ParseXML(strings.NewReader(*xmlSrc))
		if err != nil {
			return fmt.Errorf("fragment: %w", err)
		}
		frag = t
	case *xmlFile != "":
		f, err := os.Open(*xmlFile)
		if err != nil {
			return err
		}
		t, perr := arb.ParseXML(bufio.NewReaderSize(f, 1<<16))
		f.Close()
		if perr != nil {
			return fmt.Errorf("fragment: %w", perr)
		}
		frag = t
	}

	sess, err := arb.OpenVersionedSession(ctx, base)
	if err != nil {
		return err
	}
	defer sess.Close()
	info, err := sess.Patch(ctx, arb.PatchOp{Op: *op, Node: *node, Tree: frag})
	if err != nil {
		return err
	}
	fmt.Printf("committed version %d: %s (%d nodes now, delta %+d, %d bytes appended)\n",
		info.Version, info.Op, info.Nodes, info.Delta, info.SegmentBytes)
	return nil
}

// compact rewrites the live version into one fresh segment, letting the
// store delete the accumulated patch segments.
func compact(ctx context.Context, args []string) error {
	if len(args) < 1 {
		usage()
	}
	sess, err := arb.OpenVersionedSession(ctx, args[0])
	if err != nil {
		return err
	}
	defer sess.Close()
	info, err := sess.Compact(ctx)
	if err != nil {
		return err
	}
	ss, _ := sess.StoreStats()
	fmt.Printf("committed version %d: %s (%d segments live, %d bytes)\n",
		info.Version, info.Op, ss.Segments, ss.SegmentBytes)
	return nil
}

func cat(ctx context.Context, args []string) error {
	if len(args) < 1 {
		usage()
	}
	// OpenSession (not OpenDB): a patched database must emit its current
	// version, not the untouched original .arb bytes.
	sess, err := arb.OpenSession(args[0])
	if err != nil {
		return err
	}
	defer sess.Close()
	w := bufio.NewWriterSize(os.Stdout, 1<<16)
	if err := sess.EmitXML(ctx, w, nil); err != nil {
		return err
	}
	return w.Flush()
}

func stats(args []string) error {
	if len(args) < 1 {
		usage()
	}
	sess, err := arb.OpenSession(args[0])
	if err != nil {
		return err
	}
	defer sess.Close()
	fmt.Printf("%s: %d nodes, %d tags, %d bytes\n",
		args[0], sess.Len(), sess.Names().Len(), sess.Len()*2)
	if ci, ok := sess.Compression(); ok {
		fmt.Printf("compressed: %s codec, %d blocks of %d, %d -> %d bytes on disk (%.2fx)\n",
			arb.CodecName(ci.Codec), ci.Blocks, ci.BlockSize, ci.LogicalBytes, ci.PhysBytes, ci.Ratio())
	}
	if ss, ok := sess.StoreStats(); ok {
		fmt.Printf("versioned: version %d, %d segments (%d bytes), %d history entries\n",
			ss.Version, ss.Segments, ss.SegmentBytes, len(sess.History()))
		hist := sess.History()
		lo := 0
		if len(hist) > 5 {
			lo = len(hist) - 5
		}
		for _, h := range hist[lo:] {
			fmt.Printf("  v%-6d %s\n", h.Version, h.Op)
		}
	}
	return nil
}
