// Command arb is the command-line interface to the Arb query engine:
// create .arb databases from XML, evaluate TMNF or Core XPath queries
// over them in two linear scans, and emit results.
//
// Usage:
//
//	arb create <base> [file.xml]       build base.arb/base.lab from XML (stdin default)
//	arb query  <base> -q <program>     evaluate a TMNF program (Arb syntax)
//	arb query  <base> -xpath <expr>    evaluate a Core XPath query (incl. not(..), on disk)
//	arb cat    <base>                  write the database back as XML
//	arb stats  <base>                  print database statistics
//
// Query output: -count prints the number of selected nodes per query
// predicate (default); -ids prints the selected preorder node ids; -mark
// re-emits the document with selected nodes wrapped in <arb:selected>
// markup (the system's default output mode described in Section 6.3).
//
// Queries run through the library's Session/PreparedQuery API: one
// prepared query per invocation, executed with arb.ExecOpts. -j N
// evaluates with N parallel workers (0 = all CPUs): the database's
// subtree index cuts the .arb file into a frontier of chunk byte ranges
// that workers stream independently, still two linear scans' worth of
// I/O in aggregate. It pays off on large, balanced documents; -mark
// output is inherently sequential and ignores -j. -timeout bounds the
// evaluation: when the deadline passes, the scans abort promptly, all
// temporary files are cleaned up, and the command exits non-zero.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"arb"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "create":
		err = create(os.Args[2:])
	case "query":
		err = query(os.Args[2:])
	case "cat":
		err = cat(os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "arb:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  arb create <base> [file.xml]
  arb query  <base> (-q <program> | -f <program.tmnf> | -xpath <expr>) [-count|-ids|-mark] [-j N] [-timeout d]
  arb cat    <base>
  arb stats  <base>
`)
	os.Exit(2)
}

func create(args []string) error {
	if len(args) < 1 {
		usage()
	}
	base := args[0]
	var r io.Reader = os.Stdin
	if len(args) > 1 {
		f, err := os.Open(args[1])
		if err != nil {
			return err
		}
		defer f.Close()
		r = bufio.NewReaderSize(f, 1<<16)
	}
	db, stats, err := arb.CreateDB(base, r)
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Printf("created %s.arb: %d element nodes, %d character nodes, %d tags, %.2fs\n",
		base, stats.ElemNodes, stats.CharNodes, stats.Tags, stats.Duration.Seconds())
	fmt.Printf(".arb %d bytes, .lab %d bytes, temporary .evt %d bytes\n",
		stats.ArbBytes, stats.LabBytes, stats.EvtBytes)
	return nil
}

func query(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	progSrc := fs.String("q", "", "TMNF program (Arb surface syntax)")
	progFile := fs.String("f", "", "file containing a TMNF program")
	xpathSrc := fs.String("xpath", "", "Core XPath query")
	ids := fs.Bool("ids", false, "print selected node ids")
	mark := fs.Bool("mark", false, "emit the document with selected nodes marked up")
	verbose := fs.Bool("v", false, "print engine statistics")
	jobs := fs.Int("j", 1, "parallel workers (0 = all CPUs, 1 = sequential)")
	timeout := fs.Duration("timeout", 0, "abort the evaluation after this long (0 = no limit)")
	if len(args) < 1 {
		usage()
	}
	base := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sess, err := arb.OpenSession(base)
	if err != nil {
		return err
	}
	defer sess.Close()

	var pq *arb.PreparedQuery
	var prog *arb.Program
	switch {
	case *progFile != "":
		b, err := os.ReadFile(*progFile)
		if err != nil {
			return err
		}
		if prog, err = arb.ParseProgram(string(b)); err != nil {
			return err
		}
	case *progSrc != "":
		if prog, err = arb.ParseProgram(*progSrc); err != nil {
			return err
		}
	case *xpathSrc != "":
		q, err := arb.ParseXPath(*xpathSrc)
		if err != nil {
			return err
		}
		if pq, err = sess.PrepareXPath(q); err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -q, -f, -xpath is required")
	}
	if pq == nil {
		if pq, err = sess.Prepare(prog); err != nil {
			return err
		}
	}

	// Workers: the flag speaks CLI (0 = all CPUs), ExecOpts speaks
	// library (negative = all CPUs, 0 = sequential).
	workers := *jobs
	if workers == 0 {
		workers = -1
	}
	opts := arb.ExecOpts{Workers: workers, Stats: *verbose}
	var markOut *bufio.Writer
	if *mark {
		// The marked document streams out during the final pass itself
		// (Section 6.3) — still exactly two scans.
		markOut = bufio.NewWriterSize(os.Stdout, 1<<16)
		opts.MarkTo = markOut
	}
	res, prof, err := pq.Exec(ctx, opts)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("query timed out after %v (temporary files cleaned up); raise -timeout or add workers with -j", *timeout)
		}
		return err
	}
	if markOut != nil {
		if err := markOut.Flush(); err != nil {
			return err
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "phase 1 (bottom-up): %v, %d transitions; phase 2 (top-down): %v, %d transitions; %d passes, %d workers, temp %d bytes\n",
			prof.Engine.Phase1Time, prof.Engine.BUTransitions, prof.Engine.Phase2Time, prof.Engine.TDTransitions,
			prof.Passes, prof.Workers, prof.Disk.StateBytes)
	}
	switch {
	case *mark:
		return nil
	case *ids:
		return printIDs(res, pq.Queries()[0])
	default:
		for _, q := range pq.Queries() {
			fmt.Printf("%s: %d nodes selected\n", pq.Program().PredName(q), res.Count(q))
		}
	}
	return nil
}

// printIDs streams the selected preorder ids to stdout, surfacing write
// errors (a closed pipe must fail the command, not silently truncate).
func printIDs(res *arb.Result, q arb.Pred) error {
	w := bufio.NewWriterSize(os.Stdout, 1<<16)
	var werr error
	res.Walk(q, func(v arb.NodeID) bool {
		if _, err := fmt.Fprintln(w, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return w.Flush()
}

func cat(args []string) error {
	if len(args) < 1 {
		usage()
	}
	db, err := arb.OpenDB(args[0])
	if err != nil {
		return err
	}
	defer db.Close()
	w := bufio.NewWriterSize(os.Stdout, 1<<16)
	if err := arb.EmitXML(db, w, nil); err != nil {
		return err
	}
	return w.Flush()
}

func stats(args []string) error {
	if len(args) < 1 {
		usage()
	}
	db, err := arb.OpenDB(args[0])
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Printf("%s: %d nodes, %d tags, %d bytes\n", args[0], db.N, db.Names.Len(), db.N*2)
	return nil
}
