package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"arb"
)

// TestHTTPServerTimeouts is the regression test for the unbounded
// listener: serve mode must never run an http.Server without header and
// idle deadlines, or a client that opens a socket and sends nothing
// holds a connection goroutine forever.
func TestHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(nil, 3*time.Second)
	if srv.ReadHeaderTimeout != 3*time.Second {
		t.Fatalf("ReadHeaderTimeout = %v, want the -readtimeout value", srv.ReadHeaderTimeout)
	}
	if srv.IdleTimeout <= 0 {
		t.Fatalf("IdleTimeout = %v, want > 0", srv.IdleTimeout)
	}
	// A zero or negative flag must still produce a guarded server.
	for _, d := range []time.Duration{0, -time.Second} {
		srv := newHTTPServer(nil, d)
		if srv.ReadHeaderTimeout <= 0 || srv.IdleTimeout <= 0 {
			t.Fatalf("readtimeout %v: server left unguarded (%v/%v)", d, srv.ReadHeaderTimeout, srv.IdleTimeout)
		}
	}
}

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

// TestCreateCompressStatsSmoke drives the CLI path end to end: create
// -compress builds a compressed database, query-by-library selects from
// it, and stats reports the container.
func TestCreateCompressStatsSmoke(t *testing.T) {
	dir := t.TempDir()
	xml := filepath.Join(dir, "doc.xml")
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 4000; i++ {
		sb.WriteString("<item><name>abc</name></item>")
	}
	sb.WriteString("</root>")
	if err := os.WriteFile(xml, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "db")

	out := captureStdout(t, func() error {
		return create([]string{base, "-compress", "-codec", "lz", xml})
	})
	if !strings.Contains(out, "compressed with lz:") {
		t.Fatalf("create -compress output missing compression line:\n%s", out)
	}

	db, err := arb.OpenDB(base)
	if err != nil {
		t.Fatal(err)
	}
	ci, ok := db.Compression()
	if !ok || ci.Ratio() <= 1 {
		t.Fatalf("created database not compressed (ok=%v, info %+v)", ok, ci)
	}
	db.Close()

	out = captureStdout(t, func() error { return stats([]string{base}) })
	if !strings.Contains(out, "compressed: lz codec") {
		t.Fatalf("stats output missing compression line:\n%s", out)
	}
}
