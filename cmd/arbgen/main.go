// Command arbgen generates the paper's benchmark databases (Section 6.1):
// Treebank-like parse trees, Swissprot-like protein records, and the ACGT
// random DNA sequence in its flat and infix tree versions.
//
// Usage:
//
//	arbgen -dataset treebank|swissprot|acgt-flat|acgt-infix -out <base> [-scale f] [-seed n]
//
// Scale 1.0 reproduces the paper's dataset sizes (Figure 5); the default
// 1/32 produces laptop-friendly databases with the same structure.
package main

import (
	"flag"
	"fmt"
	"os"

	"arb/internal/bench"
	"arb/internal/storage"
	"arb/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "", "treebank, swissprot, acgt-flat, or acgt-infix")
	out := flag.String("out", "", "output database base path")
	scale := flag.Float64("scale", bench.DefaultScale, "fraction of the paper's dataset size")
	seed := flag.Int64("seed", 0, "override the generator seed (0 = dataset default)")
	flag.Parse()
	if *dataset == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dataset, *out, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "arbgen:", err)
		os.Exit(1)
	}
}

func run(dataset, out string, scale float64, seed int64) error {
	var db *storage.DB
	var stats *storage.CreateStats
	var err error
	switch dataset {
	case "treebank":
		cfg := workload.DefaultTreebank(scale)
		if seed != 0 {
			cfg.Seed = seed
		}
		db, stats, err = workload.CreateTreebankDB(out, cfg)
	case "swissprot":
		cfg := workload.DefaultSwissprot(scale)
		if seed != 0 {
			cfg.Seed = seed
		}
		db, stats, err = workload.CreateSwissprotDB(out, cfg)
	case "acgt-flat", "acgt-infix":
		if seed == 0 {
			seed = 4
		}
		bits := 25
		for scale < 1 && bits > 10 && float64(int64(1)<<25)*scale < float64(int64(1)<<bits) {
			bits--
		}
		seq := workload.Sequence(seed, 1<<bits-1)
		if dataset == "acgt-flat" {
			db, err = workload.CreateFlatDB(out, seq)
		} else {
			db, err = workload.CreateInfixDB(out, seq)
		}
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	if err != nil {
		return err
	}
	defer db.Close()
	if stats != nil {
		fmt.Printf("%s: %d element nodes, %d character nodes, %d tags, %.2fs\n",
			out, stats.ElemNodes, stats.CharNodes, stats.Tags, stats.Duration.Seconds())
	} else {
		fmt.Printf("%s: %d nodes\n", out, db.N)
	}
	return nil
}
