package arb

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"arb/internal/core"
	"arb/internal/rescache"
	"arb/internal/storage"
	"arb/internal/tree"
	"arb/internal/vstore"
	"arb/internal/xpath"
)

// Session wraps one open query source — an in-memory Tree or an on-disk
// DB — and is the root of everything shared between the queries prepared
// on it: the label-name table every engine resolves Label[..] tests
// against, and (for disk sessions) the database handle and its lazily
// built subtree index, which the parallel evaluator cuts its chunk
// frontier from. Queries enter through Prepare/PrepareXPath, whose
// PreparedQuery handles persist the compiled automata across executions —
// the compile-once, query-many shape the paper's engine is built for.
//
// A Session is safe for concurrent use: any number of goroutines may
// prepare and execute queries on it at once (disk reads are
// offset-addressed, so one file handle serves all scans), and executions
// of one PreparedQuery or PreparedBatch handle may overlap freely — the
// compiled automata behind a handle are internally synchronised, so a
// plan cached and shared across a server's concurrent requests never
// queues those requests behind each other.
type Session struct {
	t     *tree.Tree
	db    *storage.DB
	ownDB bool

	// vs is non-nil for versioned sessions (databases with a .arbm
	// manifest, or any database opened through OpenVersionedSession):
	// executions pin an immutable version snapshot for their whole
	// duration, and Patch/Compact publish new versions without
	// disturbing them. Exactly one of t, db, vs is the session's source.
	vs *vstore.Store

	// Lazily built subtree index (with label signatures) over the
	// in-memory tree, shared by every query prepared on the session — the
	// evidence base for selectivity-aware pruning. Disk sessions use the
	// database's own .idx sidecar instead.
	treeIdxOnce sync.Once
	treeIdx     *storage.SubtreeIndex

	// rc is the session's result cache (SetResultCache), shared by every
	// query prepared on the session; nil means no result caching. Set it
	// before executions begin — the field itself is not synchronised.
	rc *rescache.Cache

	// pins counts the snapshot pins acquired through this session and
	// not yet released — the runtime counterpart of the snappin
	// analyzer. Nonzero while the session is idle means an execution
	// leaked its release and the store cannot collect superseded
	// versions.
	pins atomic.Int64
}

// Pins reports the session's outstanding snapshot pins. Zero whenever
// no execution is in flight; anything else is a leak.
func (s *Session) Pins() int64 { return s.pins.Load() }

// treeIndex returns the session's cached in-memory subtree index,
// building it on first use (nil for disk sessions and for trees not laid
// out in preorder, which simply evaluate without pruning).
func (s *Session) treeIndex() *storage.SubtreeIndex {
	if s.t == nil {
		return nil
	}
	s.treeIdxOnce.Do(func() { s.treeIdx = storage.BuildTreeIndex(s.t, 0) })
	return s.treeIdx
}

// NewSession opens a session over an in-memory tree.
func NewSession(t *Tree) *Session { return &Session{t: t} }

// NewDBSession opens a session over an already-open database. Closing the
// session does not close the database; the caller keeps ownership.
func NewDBSession(db *DB) *Session { return &Session{db: db} }

// OpenSession opens the database stored at base (base.arb, base.lab) and
// wraps it in a session that owns it: Close closes the database too.
// When a base.arbm version manifest is present — the database has been
// patched — the session opens versioned: queries read consistent MVCC
// snapshots and the session accepts Patch/Compact. A plain database
// opens exactly as before (use OpenVersionedSession to patch one for
// the first time).
func OpenSession(base string) (*Session, error) {
	if _, err := os.Stat(base + ".arbm"); err == nil {
		return OpenVersionedSession(context.Background(), base)
	}
	db, err := storage.Open(base)
	if err != nil {
		return nil, err
	}
	return &Session{db: db, ownDB: true}, nil
}

// Close releases the session's resources (the database handle or
// versioned store, when the session owns one).
func (s *Session) Close() error {
	if s.vs != nil {
		return s.vs.Close()
	}
	if s.ownDB && s.db != nil {
		return s.db.Close()
	}
	return nil
}

// Names returns the session's label-name table. For versioned sessions
// this is the current version's table; patches that introduce new tags
// publish a grown copy, and ids never change meaning (tables only
// append), so labels resolved against an older table stay valid.
func (s *Session) Names() *Names {
	if s.vs != nil {
		return s.vs.Names()
	}
	if s.db != nil {
		return s.db.Names
	}
	return s.t.Names()
}

// DB returns the session's database, or nil for in-memory and versioned
// sessions (a versioned session has no single database — each execution
// pins its own version snapshot).
func (s *Session) DB() *DB { return s.db }

// Compression reports the database's block-compression container when
// the session reads directly from a compressed .arb. In-memory sessions
// report none; versioned sessions also report none here — their
// segments are individually compressed (or not) behind the run table.
func (s *Session) Compression() (CompressionInfo, bool) {
	if s.db != nil {
		return s.db.Compression()
	}
	return CompressionInfo{}, false
}

// Tree returns the session's tree, or nil for disk sessions.
func (s *Session) Tree() *Tree { return s.t }

// Len returns the number of nodes of the session's document (for
// versioned sessions: of the current version).
func (s *Session) Len() int64 {
	if s.vs != nil {
		return s.vs.Nodes()
	}
	if s.db != nil {
		return s.db.N
	}
	return int64(s.t.Len())
}

// SetResultCache attaches a result cache of the given byte budget to the
// session: executions opting in via ExecOpts.ResultCache publish their
// completed results keyed by (normalized query text, database version)
// and answer repeats — exact or semantically subsumed — without
// scanning. maxBytes <= 0 disables caching. Call before executions
// begin; the cache itself is safe for any amount of concurrency.
//
// In-memory sessions have no version ids, so the cache assumes the tree
// is not mutated while the session lives — the same contract the
// session's cached tree index already relies on. Versioned sessions need
// no such caveat: every execution pins a version, and entries can only
// answer requests pinning the same one.
func (s *Session) SetResultCache(maxBytes int64) { s.rc = rescache.New(maxBytes) }

// ResultCacheStats reports the result cache's counters; ok is false when
// the session has no result cache.
func (s *Session) ResultCacheStats() (ResultCacheStats, bool) {
	if s.rc == nil {
		return ResultCacheStats{}, false
	}
	return s.rc.Stats(), true
}

// acquire resolves the source one execution reads: the database handle
// (nil for in-memory sessions), the label-name table to compile
// against, the version read (0 unless versioned), and a release the
// caller must invoke when the execution is done. Versioned sessions pin
// a snapshot here — the execution keeps reading that version however
// many patches commit meanwhile, and the release is what lets the
// store collect superseded versions and their patch segments.
func (s *Session) acquire() (db *storage.DB, names *tree.Names, version uint64, release func()) {
	switch {
	case s.vs != nil:
		snap := s.vs.Snapshot()
		s.pins.Add(1)
		var once sync.Once
		release = func() {
			once.Do(func() {
				snap.Release()
				s.pins.Add(-1)
			})
		}
		return snap.DB(), snap.Names(), snap.Version(), release
	case s.db != nil:
		return s.db, s.db.Names, 0, func() {}
	default:
		return nil, s.t.Names(), 0, func() {}
	}
}

// Prepare compiles a TMNF program against the session: the result's
// automata are built lazily on first execution and persist across
// executions, so repeated queries pay the compilation and Horn-solving
// cost once.
func (s *Session) Prepare(prog *Program) (*PreparedQuery, error) {
	names := s.Names()
	p, err := xpath.PrepareProgram(prog, names)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{s: s, src: prog, names: names, p: p}, nil
}

// PrepareXPath compiles a Core XPath query against the session. Queries
// in the positive fragment become one pass; every not(..) condition adds
// an auxiliary pass, chained through aux labelings in memory or aux-mask
// sidecar files on disk — either way Exec runs all passes and returns the
// main pass's result.
func (s *Session) PrepareXPath(q *XPathQuery) (*PreparedQuery, error) {
	names := s.Names()
	p, err := q.Prepare(names)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{s: s, src: q, names: names, p: p}, nil
}

// PrepareBatch compiles several queries against the session for
// shared-scan batch execution: PreparedBatch.Exec evaluates all of them
// during a single pair of scans per round, so a workload of N single-pass
// queries over a disk session costs two linear scans of the data in
// aggregate instead of 2N. Each item must be a *Program (TMNF) or an
// *XPathQuery (Core XPath, including not(..) queries, whose auxiliary
// passes piggyback on the other members' scans). Like PreparedQuery, the
// members' lazily built automata persist across executions.
func (s *Session) PrepareBatch(items ...any) (*PreparedBatch, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("arb: PrepareBatch needs at least one query")
	}
	members := make([]*PreparedQuery, len(items))
	for i, item := range items {
		var err error
		switch q := item.(type) {
		case *Program:
			members[i], err = s.Prepare(q)
		case *XPathQuery:
			members[i], err = s.PrepareXPath(q)
		default:
			err = fmt.Errorf("unsupported type %T (want *arb.Program or *arb.XPathQuery)", item)
		}
		if err != nil {
			return nil, fmt.Errorf("arb: PrepareBatch item %d: %w", i, err)
		}
	}
	return &PreparedBatch{s: s, members: members}, nil
}

// BatchOf groups queries already prepared on this session into a
// PreparedBatch without recompiling them: the batch's members are the
// handles' own compiled passes, so their warm automata — transition
// tables paid for by earlier scalar executions — drive the shared scans
// directly, and work computed during the batch warms the scalar handles
// in return. This is the shape a coalescing query server wants: cache
// one PreparedQuery per distinct query text, and fold whatever mix of
// hot handles the current requests name into one shared-scan execution.
//
// The handles remain independently usable (including concurrently with
// batch executions that contain them). Every query must have been
// prepared on this session; duplicates are allowed but cost a redundant
// member each — callers coalescing requests should deduplicate first.
func (s *Session) BatchOf(queries ...*PreparedQuery) (*PreparedBatch, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("arb: BatchOf needs at least one query")
	}
	members := make([]*PreparedQuery, len(queries))
	for i, q := range queries {
		if q == nil {
			return nil, fmt.Errorf("arb: BatchOf: query %d is nil", i)
		}
		if q.s != s {
			return nil, fmt.Errorf("arb: BatchOf: query %d was prepared on a different session", i)
		}
		members[i] = q
	}
	return &PreparedBatch{s: s, members: members}, nil
}

// ExecOpts configures one execution of a prepared query. The zero value
// is a sequential run returning just the result.
type ExecOpts struct {
	// Workers is the number of parallel evaluation workers: 0 or 1 runs
	// the sequential paths, n > 1 runs n workers over a frontier of
	// disjoint subtrees (chunk byte ranges on disk), and any negative
	// value uses all CPUs. Results are identical at every setting.
	Workers int
	// KeepStates retains per-node evaluation state from the main pass:
	// in-memory sessions record the automaton states in the Result
	// (Result.BUStateOf/TDStateOf); disk sessions keep the phase-1
	// state file and report its path as Result.StateFile. Every
	// execution writes a uniquely named file next to the database, so
	// KeepStates executions — through one handle or many — run
	// concurrently without blocking or clobbering each other; the
	// caller owns removal of each kept file.
	KeepStates bool
	// Stats asks Exec to return a Profile of this execution's cost;
	// when false Exec returns a nil Profile.
	Stats bool
	// MarkTo, when non-nil, streams the document back out as XML with
	// the nodes selected by query predicate MarkQuery (an index into
	// Queries()) marked up — the system's default output mode
	// (Section 6.3). On disk the marked document is produced during the
	// final pass's forward scan itself; marking forces that pass
	// sequential.
	MarkTo    io.Writer
	MarkQuery int
	// NoPrune disables selectivity-aware scan pruning for this
	// execution. By default every strategy seeks past whole subtrees the
	// compiled automata provably cannot select from (using the label
	// summaries of the database's .idx sidecar, or the session's tree
	// index in memory), turning the two-scan cost into one proportional
	// to query selectivity; results are bit-identical either way, and
	// Profile reports what was skipped (Disk.PhaseN.SkippedBytes,
	// Engine.PrunedNodes). Executions that keep per-node state, stream
	// marked XML, or read aux masks never prune regardless of this flag.
	NoPrune bool
	// ResultCache opts this execution into the session's result cache
	// (SetResultCache): a completed result is published under the query's
	// normalized text and the pinned version, and a repeat at the same
	// version is answered from the cache — exactly, or by re-filtering a
	// cached superset when the selection summaries prove containment —
	// with zero scans (Profile.Passes is 0 and Profile.ResultCache names
	// the hit kind). Ignored without a session cache, and never applied
	// to executions that stream marked XML or keep per-node state.
	ResultCache bool
}

// Profile is the merged cost profile of one Exec across all its passes:
// the engine work (the paper's Figure 6 columns, counting only this
// execution — a warm prepared query computes few or no new transitions)
// and, for disk sessions, the scan profile of Figure 5's storage model.
type Profile struct {
	Engine Stats     // automata work: phase times, lazy transitions, states
	Disk   DiskStats // linear-scan profile; zero for in-memory sessions
	Passes int       // automata passes executed (auxiliary + main)
	// Workers is the resolved worker request the execution dispatched
	// with; databases below the parallel evaluator's coordination
	// threshold and marked-output passes may still evaluate
	// sequentially.
	Workers int
	// Version is the database version this execution read — versioned
	// sessions pin exactly one MVCC snapshot for all their passes, so
	// concurrent patches never change an execution's data mid-flight.
	// Zero for unversioned sessions.
	Version  uint64
	Duration time.Duration
	// ResultCache reports how the result cache served this execution:
	// "hit" (exact), "subsumed" (re-filtered from a cached superset),
	// "miss" (cache enabled, executed normally), or "" (cache not in
	// play). On hits the execution ran zero scans: Passes is 0 and the
	// Engine/Disk profiles are zero.
	ResultCache string
}

// SkippedBytes returns the total .arb bytes this execution's scans
// seeked past thanks to selectivity-aware pruning. Within each scan
// pair, Bytes + SkippedBytes covers the database exactly once per
// phase; the merged Profile accumulates that over the execution's
// passes, so a P-pass execution's per-phase total is P × database
// size. Zero for in-memory sessions, whose pruning shows up as
// Engine.PrunedNodes instead.
func (p *Profile) SkippedBytes() int64 {
	return p.Disk.Phase1.SkippedBytes + p.Disk.Phase2.SkippedBytes
}

// PreparedQuery is a query compiled against one Session, ready for
// repeated execution. The pair of deterministic tree automata per pass is
// computed lazily and persists across Exec calls (the paper's footnote
// 15), so a warm query evaluates with two hash-table lookups per node.
//
// Exec is reentrant: any number of goroutines may execute one handle at
// once and the executions overlap, sharing the warm automata through the
// engines' internal locks — the shape a server's plan cache needs, where
// one hot handle fields many concurrent requests. Even ExecOpts.KeepStates
// disk executions overlap freely: each keeps its own uniquely named state
// file, reported as Result.StateFile.
type PreparedQuery struct {
	s   *Session
	src any // recompilation source: *Program or *XPathQuery

	// On a versioned session a patch that introduces new tag names
	// publishes a grown label table; engines are bound to the exact
	// table their database snapshot carries, so the handle recompiles
	// lazily when the table identity changes (tables only append, so
	// the recompiled plan answers identically on unchanged labels).
	// Patches that add no tags keep the table — and the warm automata.
	mu    sync.Mutex
	names *tree.Names     // table p is compiled against; guarded by: mu
	p     *xpath.Prepared // guarded by: mu (pointer swap only; the handle itself is reentrant)

	// key is the query's normalized result-cache key, rendered once on
	// first use. It depends only on the source (not the name table), so
	// it survives recompilation.
	key string // guarded by: mu
}

// cacheKey returns the query's normalized result-cache key: the same
// "xpath:"/"tmnf:"-prefixed normal form the server's plan cache keys by,
// so one identity serves both tiers.
func (q *PreparedQuery) cacheKey() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.key == "" {
		switch src := q.src.(type) {
		case *XPathQuery:
			q.key = "xpath:" + src.Path.String()
		case *Program:
			q.key = "tmnf:" + src.String()
		}
	}
	return q.key
}

// handle returns the current compiled handle (for inspection paths that
// do not care which name-table generation it is bound to).
func (q *PreparedQuery) handle() *xpath.Prepared {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.p
}

// prepared returns the compiled handle bound to names, recompiling once
// per name-table generation. The common case — unversioned sessions,
// and versioned sessions whose patches added no tags — is a pointer
// compare returning the cached handle.
func (q *PreparedQuery) prepared(names *tree.Names) (*xpath.Prepared, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if names == q.names {
		return q.p, nil
	}
	var p *xpath.Prepared
	var err error
	switch src := q.src.(type) {
	case *Program:
		p, err = xpath.PrepareProgram(src, names)
	case *XPathQuery:
		p, err = src.Prepare(names)
	default:
		err = fmt.Errorf("arb: unknown query source %T", q.src)
	}
	if err != nil {
		return nil, err
	}
	q.names, q.p = names, p
	return p, nil
}

// Queries returns the query predicates Exec's result reports, in the
// program's declaration order (XPath queries have exactly one).
func (q *PreparedQuery) Queries() []Pred { return q.handle().Queries() }

// Program returns the program of the query's main pass (for predicate
// naming and inspection).
func (q *PreparedQuery) Program() *Program { return q.handle().Program() }

// Exec runs the query over the session's source and returns the unified
// result, dispatching internally to the right strategy: in-memory or
// secondary-storage, sequential or parallel (opts.Workers), single- or
// multi-pass — always through the same two-phase tree-automata engine, so
// the selected nodes are identical on every path.
//
// Cancelling ctx aborts the scan in progress: Exec returns ctx.Err()
// (wrapped, so errors.Is reports context.Canceled or DeadlineExceeded)
// and every temporary file the execution created — state files and
// aux-mask sidecars — is removed. A nil ctx means context.Background().
func (q *PreparedQuery) Exec(ctx context.Context, opts ExecOpts) (*Result, *Profile, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.MarkTo != nil {
		if nq := len(q.Queries()); opts.MarkQuery < 0 || opts.MarkQuery >= nq {
			return nil, nil, fmt.Errorf("arb: MarkQuery %d out of range (the query defines %d predicates)", opts.MarkQuery, nq)
		}
	}
	workers := opts.Workers
	switch {
	case workers < 0:
		workers = xpath.ResolveWorkers(0)
	case workers == 0:
		workers = 1
	}
	xopts := xpath.ExecOpts{
		Workers:    workers,
		KeepStates: opts.KeepStates,
		MarkTo:     opts.MarkTo,
		MarkQuery:  opts.MarkQuery,
		NoPrune:    opts.NoPrune,
	}

	db, names, version, release := q.s.acquire()
	defer release()
	p, err := q.prepared(names)
	if err != nil {
		return nil, nil, err
	}
	if db == nil && !opts.NoPrune {
		xopts.Index = q.s.treeIndex()
	}

	start := time.Now()
	// Result cache: look up at the pinned version before scanning, and
	// publish on clean completion. Marked-output and kept-state
	// executions bypass the cache entirely — their side effects are the
	// point, and a cached Result carries neither.
	rc := q.s.rc
	useCache := opts.ResultCache && rc != nil && opts.MarkTo == nil && !opts.KeepStates
	var key string
	var sum *core.SelSummary
	var n int64
	if useCache {
		if db != nil {
			n = db.N
		} else {
			n = int64(q.s.t.Len())
		}
		useCache = n < rescache.MaxNodes
	}
	cacheKind := ""
	if useCache {
		key = q.cacheKey()
		sum = p.Summary()
		if res, kind := rc.Lookup(key, version, sum, p.Program(), n); kind != rescache.Miss {
			if !opts.Stats {
				return res, nil, nil
			}
			return res, &Profile{
				Workers:     workers,
				Version:     version,
				Duration:    time.Since(start),
				ResultCache: kind.String(),
			}, nil
		}
		cacheKind = rescache.Miss.String()
	}

	var res *Result
	var es xpath.ExecStats
	if db != nil {
		res, es, err = p.ExecDisk(ctx, db, xopts)
	} else {
		res, es, err = p.ExecTree(ctx, q.s.t, xopts)
	}
	if err != nil {
		return nil, nil, err
	}
	if useCache {
		var ids []uint64
		if sum != nil {
			ids = packIDs(res, p.Queries(), db, q.s.t, rc.IDBudget())
		}
		rc.Put(key, version, res, sum, ids)
	}
	if !opts.Stats {
		return res, nil, nil
	}
	return res, &Profile{
		Engine:      es.Engine,
		Disk:        es.Disk,
		Passes:      es.Passes,
		Workers:     workers,
		Version:     version,
		Duration:    time.Since(start),
		ResultCache: cacheKind,
	}, nil
}

// TryCached answers the query from the session's result cache without
// executing anything: it pins the session's current version, consults
// the cache (exactly or via subsumption), and reports ok=false on a
// miss or when the session has no cache. Servers call it before
// queueing work — a hit costs no scan, no queue slot, no coalescing
// wait. The returned Profile carries the pinned version and the hit
// kind in Profile.ResultCache.
func (q *PreparedQuery) TryCached() (*Result, *Profile, bool) {
	rc := q.s.rc
	if rc == nil {
		return nil, nil, false
	}
	start := time.Now()
	db, names, version, release := q.s.acquire()
	defer release()
	p, err := q.prepared(names)
	if err != nil {
		return nil, nil, false
	}
	var n int64
	if db != nil {
		n = db.N
	} else {
		n = int64(q.s.t.Len())
	}
	if n >= rescache.MaxNodes {
		return nil, nil, false
	}
	res, kind := rc.Lookup(q.cacheKey(), version, p.Summary(), p.Program(), n)
	if kind == rescache.Miss {
		return nil, nil, false
	}
	return res, &Profile{
		Version:     version,
		Duration:    time.Since(start),
		ResultCache: kind.String(),
	}, true
}

// packIDs renders the packed (id, label, root) subsumption list of a
// completed single-query result, reading labels from the in-memory tree
// or by random record access against the pinned database. Returns nil —
// the entry then serves exact hits only — when the result selects more
// ids than the cache admits or a label cannot be read.
func packIDs(res *Result, qs []Pred, db *storage.DB, t *tree.Tree, budget int64) []uint64 {
	if len(qs) != 1 {
		return nil
	}
	count := res.Count(qs[0])
	if count > budget {
		return nil
	}
	ids := make([]uint64, 0, count)
	ok := true
	res.Walk(qs[0], func(v tree.NodeID) bool {
		var l tree.Label
		if db != nil {
			rec, err := db.RecordAt(int64(v))
			if err != nil {
				ok = false
				return false
			}
			l = tree.Label(rec.Label)
		} else {
			l = t.Label(v)
		}
		ids = append(ids, rescache.PackID(int64(v), l, v == 0))
		return true
	})
	if !ok {
		return nil
	}
	return ids
}

// Count is a convenience for the common single-query case: it executes
// the query sequentially and returns how many nodes its first query
// predicate selected.
func (q *PreparedQuery) Count(ctx context.Context) (int64, error) {
	res, _, err := q.Exec(ctx, ExecOpts{})
	if err != nil {
		return 0, err
	}
	return res.Count(q.Queries()[0]), nil
}

// PreparedBatch is a set of queries compiled against one Session that
// execute together: one Exec evaluates every member during a single pair
// of linear scans per round, sharing the tree or byte-range iteration,
// the buffered readers, and (on disk) one widened state file, while each
// member keeps its own automata and its own result. Multi-pass members
// are scheduled so that round r runs pass r of every member that still
// has one — the number of scan pairs is the longest member's pass count,
// not the sum over members.
//
// Exec is reentrant exactly as PreparedQuery.Exec is: executions of one
// PreparedBatch may overlap, and the members' automata persist across
// executions exactly as a PreparedQuery's do.
type PreparedBatch struct {
	s       *Session
	members []*PreparedQuery
}

// Len returns the number of member queries.
func (b *PreparedBatch) Len() int { return len(b.members) }

// Queries returns the query predicates of member i, in its program's
// declaration order — the predicates to look up in Exec's i-th result.
func (b *PreparedBatch) Queries(i int) []Pred { return b.members[i].Queries() }

// Program returns the program of member i's main pass (for predicate
// naming and inspection).
func (b *PreparedBatch) Program(i int) *Program { return b.members[i].Program() }

// Rounds returns the number of shared scan pairs one Exec runs: 1 for a
// batch of single-pass queries — two linear scans in aggregate, however
// many queries the batch holds — plus one per extra not(..) nesting level
// of the deepest multi-pass member.
func (b *PreparedBatch) Rounds() int {
	r := 0
	for _, m := range b.members {
		if p := m.handle().Passes(); p > r {
			r = p
		}
	}
	return r
}

// Exec evaluates every member query over the session's source during
// shared scans and returns one Result per member, in PrepareBatch order.
// The selected nodes are bit-identical to executing each member through
// its own PreparedQuery. ExecOpts.Workers picks sequential or parallel
// evaluation exactly as for a single query; ExecOpts.KeepStates and
// ExecOpts.MarkTo do not apply to batches and are rejected. The returned
// Profile is the merged cost of the whole batch — Profile.Passes counts
// the scheduled rounds (scan pairs), and on disk the bytes-read counters
// of Profile.Disk show each aggregate scan reading the database exactly
// once per phase.
//
// Cancelling ctx aborts the scan in progress: Exec returns ctx.Err()
// (wrapped) and removes every temporary file — the widened state file
// and the aux-mask sidecars chaining multi-pass members. A nil ctx means
// context.Background().
func (b *PreparedBatch) Exec(ctx context.Context, opts ExecOpts) ([]*Result, *Profile, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.MarkTo != nil {
		return nil, nil, fmt.Errorf("arb: MarkTo is not supported for batch execution; mark through a single PreparedQuery")
	}
	if opts.KeepStates {
		return nil, nil, fmt.Errorf("arb: KeepStates is not supported for batch execution")
	}
	workers := opts.Workers
	switch {
	case workers < 0:
		workers = xpath.ResolveWorkers(0)
	case workers == 0:
		workers = 1
	}
	xopts := xpath.ExecOpts{Workers: workers, NoPrune: opts.NoPrune}

	// One snapshot serves the whole batch: every member scans the same
	// version, and coalesced server batches inherit that consistency.
	db, names, version, release := b.s.acquire()
	defer release()
	members := make([]*xpath.Prepared, len(b.members))
	for i, m := range b.members {
		p, err := m.prepared(names)
		if err != nil {
			return nil, nil, err
		}
		members[i] = p
	}
	xb := xpath.NewBatch(members)
	if db == nil && !opts.NoPrune {
		xopts.Index = b.s.treeIndex()
	}

	start := time.Now()
	var res []*Result
	var es xpath.ExecStats
	var err error
	if db != nil {
		res, es, err = xb.ExecDisk(ctx, db, xopts)
	} else {
		res, es, err = xb.ExecTree(ctx, b.s.t, xopts)
	}
	if err != nil {
		return nil, nil, err
	}
	// Publish every member's completed result at the batch's pinned
	// version — a coalesced server batch warms the cache for all the
	// queries it carried. Lookups stay with the scalar path (servers
	// check TryCached before coalescing).
	if rc := b.s.rc; opts.ResultCache && rc != nil {
		var n int64
		if db != nil {
			n = db.N
		} else {
			n = int64(b.s.t.Len())
		}
		if n < rescache.MaxNodes {
			for i, m := range b.members {
				sum := members[i].Summary()
				var ids []uint64
				if sum != nil {
					ids = packIDs(res[i], members[i].Queries(), db, b.s.t, rc.IDBudget())
				}
				rc.Put(m.cacheKey(), version, res[i], sum, ids)
			}
		}
	}
	if !opts.Stats {
		return res, nil, nil
	}
	return res, &Profile{
		Engine:   es.Engine,
		Disk:     es.Disk,
		Passes:   es.Passes,
		Workers:  workers,
		Version:  version,
		Duration: time.Since(start),
	}, nil
}

// Count executes the batch sequentially and returns, per member, how
// many nodes its first query predicate selected — the batch counterpart
// of PreparedQuery.Count.
func (b *PreparedBatch) Count(ctx context.Context) ([]int64, error) {
	res, _, err := b.Exec(ctx, ExecOpts{})
	if err != nil {
		return nil, err
	}
	counts := make([]int64, len(res))
	for i, r := range res {
		counts[i] = r.Count(b.Queries(i)[0])
	}
	return counts, nil
}
