package arb

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"arb/internal/storage"
	"arb/internal/tree"
	"arb/internal/xpath"
)

// Session wraps one open query source — an in-memory Tree or an on-disk
// DB — and is the root of everything shared between the queries prepared
// on it: the label-name table every engine resolves Label[..] tests
// against, and (for disk sessions) the database handle and its lazily
// built subtree index, which the parallel evaluator cuts its chunk
// frontier from. Queries enter through Prepare/PrepareXPath, whose
// PreparedQuery handles persist the compiled automata across executions —
// the compile-once, query-many shape the paper's engine is built for.
//
// A Session is safe for concurrent use: any number of goroutines may
// prepare and execute queries on it at once (disk reads are
// offset-addressed, so one file handle serves all scans; each
// PreparedQuery serialises its own executions).
type Session struct {
	t     *tree.Tree
	db    *storage.DB
	ownDB bool
}

// NewSession opens a session over an in-memory tree.
func NewSession(t *Tree) *Session { return &Session{t: t} }

// NewDBSession opens a session over an already-open database. Closing the
// session does not close the database; the caller keeps ownership.
func NewDBSession(db *DB) *Session { return &Session{db: db} }

// OpenSession opens the database stored at base (base.arb, base.lab) and
// wraps it in a session that owns it: Close closes the database too.
func OpenSession(base string) (*Session, error) {
	db, err := storage.Open(base)
	if err != nil {
		return nil, err
	}
	return &Session{db: db, ownDB: true}, nil
}

// Close releases the session's resources (the database handle, when the
// session owns one).
func (s *Session) Close() error {
	if s.ownDB && s.db != nil {
		return s.db.Close()
	}
	return nil
}

// Names returns the session's label-name table.
func (s *Session) Names() *Names {
	if s.db != nil {
		return s.db.Names
	}
	return s.t.Names()
}

// DB returns the session's database, or nil for in-memory sessions.
func (s *Session) DB() *DB { return s.db }

// Tree returns the session's tree, or nil for disk sessions.
func (s *Session) Tree() *Tree { return s.t }

// Len returns the number of nodes of the session's document.
func (s *Session) Len() int64 {
	if s.db != nil {
		return s.db.N
	}
	return int64(s.t.Len())
}

// Prepare compiles a TMNF program against the session: the result's
// automata are built lazily on first execution and persist across
// executions, so repeated queries pay the compilation and Horn-solving
// cost once.
func (s *Session) Prepare(prog *Program) (*PreparedQuery, error) {
	p, err := xpath.PrepareProgram(prog, s.Names())
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{s: s, p: p}, nil
}

// PrepareXPath compiles a Core XPath query against the session. Queries
// in the positive fragment become one pass; every not(..) condition adds
// an auxiliary pass, chained through aux labelings in memory or aux-mask
// sidecar files on disk — either way Exec runs all passes and returns the
// main pass's result.
func (s *Session) PrepareXPath(q *XPathQuery) (*PreparedQuery, error) {
	p, err := q.Prepare(s.Names())
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{s: s, p: p}, nil
}

// ExecOpts configures one execution of a prepared query. The zero value
// is a sequential run returning just the result.
type ExecOpts struct {
	// Workers is the number of parallel evaluation workers: 0 or 1 runs
	// the sequential paths, n > 1 runs n workers over a frontier of
	// disjoint subtrees (chunk byte ranges on disk), and any negative
	// value uses all CPUs. Results are identical at every setting.
	Workers int
	// KeepStates retains per-node evaluation state from the main pass:
	// in-memory sessions record the automaton states in the Result
	// (Result.BUStateOf/TDStateOf); disk sessions keep the phase-1
	// state file under the discoverable name base.sta. Because that
	// name is fixed per database, concurrent disk executions with
	// KeepStates set would overwrite each other's file — serialise
	// them (executions without KeepStates use unique temp files and
	// are free to run concurrently).
	KeepStates bool
	// Stats asks Exec to return a Profile of this execution's cost;
	// when false Exec returns a nil Profile.
	Stats bool
	// MarkTo, when non-nil, streams the document back out as XML with
	// the nodes selected by query predicate MarkQuery (an index into
	// Queries()) marked up — the system's default output mode
	// (Section 6.3). On disk the marked document is produced during the
	// final pass's forward scan itself; marking forces that pass
	// sequential.
	MarkTo    io.Writer
	MarkQuery int
}

// Profile is the merged cost profile of one Exec across all its passes:
// the engine work (the paper's Figure 6 columns, counting only this
// execution — a warm prepared query computes few or no new transitions)
// and, for disk sessions, the scan profile of Figure 5's storage model.
type Profile struct {
	Engine Stats     // automata work: phase times, lazy transitions, states
	Disk   DiskStats // linear-scan profile; zero for in-memory sessions
	Passes int       // automata passes executed (auxiliary + main)
	// Workers is the resolved worker request the execution dispatched
	// with; databases below the parallel evaluator's coordination
	// threshold and marked-output passes may still evaluate
	// sequentially.
	Workers  int
	Duration time.Duration
}

// PreparedQuery is a query compiled against one Session, ready for
// repeated execution. The pair of deterministic tree automata per pass is
// computed lazily and persists across Exec calls (the paper's footnote
// 15), so a warm query evaluates with two hash-table lookups per node.
// Exec is safe to call from multiple goroutines; executions of one
// PreparedQuery are serialised (prepare one handle per goroutine for
// independent parallel queries — they share the session's source).
type PreparedQuery struct {
	s  *Session
	mu sync.Mutex
	p  *xpath.Prepared
}

// Queries returns the query predicates Exec's result reports, in the
// program's declaration order (XPath queries have exactly one).
func (q *PreparedQuery) Queries() []Pred { return q.p.Queries() }

// Program returns the program of the query's main pass (for predicate
// naming and inspection).
func (q *PreparedQuery) Program() *Program { return q.p.Program() }

// Exec runs the query over the session's source and returns the unified
// result, dispatching internally to the right strategy: in-memory or
// secondary-storage, sequential or parallel (opts.Workers), single- or
// multi-pass — always through the same two-phase tree-automata engine, so
// the selected nodes are identical on every path.
//
// Cancelling ctx aborts the scan in progress: Exec returns ctx.Err()
// (wrapped, so errors.Is reports context.Canceled or DeadlineExceeded)
// and every temporary file the execution created — state files and
// aux-mask sidecars — is removed. A nil ctx means context.Background().
func (q *PreparedQuery) Exec(ctx context.Context, opts ExecOpts) (*Result, *Profile, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.MarkTo != nil {
		if nq := len(q.Queries()); opts.MarkQuery < 0 || opts.MarkQuery >= nq {
			return nil, nil, fmt.Errorf("arb: MarkQuery %d out of range (the query defines %d predicates)", opts.MarkQuery, nq)
		}
	}
	workers := opts.Workers
	switch {
	case workers < 0:
		workers = xpath.ResolveWorkers(0)
	case workers == 0:
		workers = 1
	}
	xopts := xpath.ExecOpts{
		Workers:    workers,
		KeepStates: opts.KeepStates,
		MarkTo:     opts.MarkTo,
		MarkQuery:  opts.MarkQuery,
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	start := time.Now()
	var res *Result
	var es xpath.ExecStats
	var err error
	if q.s.db != nil {
		res, es, err = q.p.ExecDisk(ctx, q.s.db, xopts)
	} else {
		res, es, err = q.p.ExecTree(ctx, q.s.t, xopts)
	}
	if err != nil {
		return nil, nil, err
	}
	if !opts.Stats {
		return res, nil, nil
	}
	return res, &Profile{
		Engine:   es.Engine,
		Disk:     es.Disk,
		Passes:   es.Passes,
		Workers:  workers,
		Duration: time.Since(start),
	}, nil
}

// Count is a convenience for the common single-query case: it executes
// the query sequentially and returns how many nodes its first query
// predicate selected.
func (q *PreparedQuery) Count(ctx context.Context) (int64, error) {
	res, _, err := q.Exec(ctx, ExecOpts{})
	if err != nil {
		return 0, err
	}
	return res.Count(q.Queries()[0]), nil
}
