package arb_test

import (
	"context"
	"path/filepath"
	"testing"

	"arb"
	"arb/internal/storage"
	"arb/internal/testutil"
)

// compressedCopy creates a second database from the same tree and
// rewrites it as a block-compressed container.
func compressedCopy(tb testing.TB, dir string, tr *arb.Tree, codec string, blockSize int) (string, arb.CompressionInfo) {
	tb.Helper()
	base := filepath.Join(dir, "compressed")
	db, err := arb.CreateDBFromTree(base, tr)
	if err != nil {
		tb.Fatal(err)
	}
	db.Close()
	info, err := arb.CompressDB(base, codec, blockSize)
	if err != nil {
		tb.Fatal(err)
	}
	if info.Ratio() <= 1 {
		tb.Fatalf("compression ratio %.2f on a repetitive-label document", info.Ratio())
	}
	return base, info
}

// TestCompressDifferentialStrategies is the compressed/raw differential
// across every strategy: for each corpus query, every execution on the
// compressed database must select bit-identical nodes to the raw one —
// sequential, parallel, pruned and unpruned — while the logical byte
// counters stay identical and the physical counters show the container
// actually saving reads.
func TestCompressDifferentialStrategies(t *testing.T) {
	tr := buildPruneDoc(t, 8, 300)
	dir := t.TempDir()
	rawBase := filepath.Join(dir, "raw")
	rawDB, err := arb.CreateDBFromTree(rawBase, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer rawDB.Close()
	compBase, info := compressedCopy(t, dir, tr, "lz", 1<<14)
	compDB, err := arb.OpenDB(compBase)
	if err != nil {
		t.Fatal(err)
	}
	defer compDB.Close()
	if ci, ok := compDB.Compression(); !ok || ci.PhysBytes != info.PhysBytes {
		t.Fatalf("reopened compression info %+v ok=%v, want %+v", ci, ok, info)
	}
	dataBytes := rawDB.N * storage.NodeSize

	rawSess := arb.NewDBSession(rawDB)
	compSess := arb.NewDBSession(compDB)

	for qi, item := range pruneQueries(t) {
		rawPQ := prepare(t, rawSess, item)
		compPQ := prepare(t, compSess, item)
		for _, opts := range []arb.ExecOpts{
			{},
			{Workers: 4},
			{NoPrune: true},
			{Workers: 4, NoPrune: true},
		} {
			opts.Stats = true
			rawRes, rawProf, err := rawPQ.Exec(context.Background(), opts)
			if err != nil {
				t.Fatalf("query %d raw %+v: %v", qi, opts, err)
			}
			compRes, compProf, err := compPQ.Exec(context.Background(), opts)
			if err != nil {
				t.Fatalf("query %d compressed %+v: %v", qi, opts, err)
			}
			want := rawRes.Selected(rawPQ.Queries()[0])
			got := compRes.Selected(compPQ.Queries()[0])
			if len(got) != len(want) {
				t.Fatalf("query %d %+v: compressed selected %d, raw %d", qi, opts, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("query %d %+v: selected[%d] = %d, raw %d", qi, opts, i, got[i], want[i])
				}
			}
			// Logical counters agree exactly: same scans, same skips.
			for phase, pair := range map[string][2]storage.ScanStats{
				"phase1": {rawProf.Disk.Phase1, compProf.Disk.Phase1},
				"phase2": {rawProf.Disk.Phase2, compProf.Disk.Phase2},
			} {
				r, c := pair[0], pair[1]
				if r.Bytes != c.Bytes || r.SkippedBytes != c.SkippedBytes || r.Nodes != c.Nodes {
					t.Fatalf("query %d %+v %s: logical stats diverged: raw %+v comp %+v", qi, opts, phase, r, c)
				}
				// Raw: physical == logical read bytes. Compressed: strictly
				// fewer physical bytes than logical on this repetitive
				// document whenever the phase read anything substantial.
				if r.PhysicalBytes != r.Bytes {
					t.Fatalf("query %d %+v %s: raw physical %d != bytes %d", qi, opts, phase, r.PhysicalBytes, r.Bytes)
				}
				if c.Bytes > dataBytes/4 && c.PhysicalBytes >= c.Bytes {
					t.Fatalf("query %d %+v %s: compressed physical %d >= logical %d", qi, opts, phase, c.PhysicalBytes, c.Bytes)
				}
			}
			// Sequential unpruned runs scan every block exactly once per
			// pass: physical bytes equal the container payload per scan.
			if opts.Workers == 0 && opts.NoPrune {
				passes := int64(compProf.Passes)
				if p := compProf.Disk.Phase1.PhysicalBytes; p != passes*info.PayloadBytes {
					t.Fatalf("query %d: full-scan phase1 physical %d, want %d x %d", qi, p, passes, info.PayloadBytes)
				}
			}
		}
	}
	assertOnlyDatabaseFiles(t, dir)
}

// TestCompressBatchDifferential runs shared-scan batches on the
// compressed database against the raw one at both worker counts.
func TestCompressBatchDifferential(t *testing.T) {
	tr := buildPruneDoc(t, 6, 250)
	dir := t.TempDir()
	rawDB, err := arb.CreateDBFromTree(filepath.Join(dir, "raw"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer rawDB.Close()
	compBase, _ := compressedCopy(t, dir, tr, "flate", 1<<14)
	compDB, err := arb.OpenDB(compBase)
	if err != nil {
		t.Fatal(err)
	}
	defer compDB.Close()

	items := pruneQueries(t)
	rawPB, err := arb.NewDBSession(rawDB).PrepareBatch(items...)
	if err != nil {
		t.Fatal(err)
	}
	compPB, err := arb.NewDBSession(compDB).PrepareBatch(items...)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		opts := arb.ExecOpts{Workers: workers, Stats: true}
		wantRes, _, err := rawPB.Exec(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		gotRes, prof, err := compPB.Exec(context.Background(), opts)
		if err != nil {
			t.Fatalf("compressed batch workers=%d: %v", workers, err)
		}
		for m := range gotRes {
			for _, q := range compPB.Queries(m) {
				got, want := gotRes[m].Selected(q), wantRes[m].Selected(q)
				if len(got) != len(want) {
					t.Fatalf("workers=%d member %d: %d selected, want %d", workers, m, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("workers=%d member %d: selected[%d]=%d, want %d", workers, m, i, got[i], want[i])
					}
				}
			}
		}
		if p := prof.Disk.Phase1.PhysicalBytes + prof.Disk.Phase2.PhysicalBytes; p == 0 {
			t.Fatalf("workers=%d: compressed batch reported no physical bytes", workers)
		}
	}
	assertOnlyDatabaseFiles(t, dir)
}

// TestCompressLargeDifferential is the full-size acceptance experiment:
// a >= 64 MB repetitive-label database compressed with both the scan
// invariants and bit-identical selection against the raw original.
// Skipped under -short and the race detector like the other full-size
// experiments.
func TestCompressLargeDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("64 MB database experiment skipped in -short mode")
	}
	if testutil.RaceEnabled {
		t.Skip("64 MB database experiment skipped under the race detector")
	}
	dir := t.TempDir()
	rawBase := filepath.Join(dir, "raw")
	rawDB, err := storage.CreateFullBinary(rawBase, 24, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	defer rawDB.Close()
	if bytes := rawDB.N * storage.NodeSize; bytes < 64_000_000 {
		t.Fatalf("generated database is %d bytes, want >= 64 MB", bytes)
	}
	compBase := filepath.Join(dir, "comp")
	if _, err := storage.CreateFullBinary(compBase, 24, []string{"a", "b", "c", "d"}); err != nil {
		t.Fatal(err)
	}
	info, err := arb.CompressDB(compBase, "lz", 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Ratio() < 1.5 {
		t.Fatalf("full-binary label stream compressed only %.2fx", info.Ratio())
	}
	compDB, err := arb.OpenDB(compBase)
	if err != nil {
		t.Fatal(err)
	}
	defer compDB.Close()
	if compDB.N != rawDB.N {
		t.Fatalf("compressed N %d, raw %d", compDB.N, rawDB.N)
	}

	prog, err := arb.ParseProgram(`QUERY :- Label[b];`)
	if err != nil {
		t.Fatal(err)
	}
	rawPQ, err := arb.NewDBSession(rawDB).Prepare(prog)
	if err != nil {
		t.Fatal(err)
	}
	compPQ, err := arb.NewDBSession(compDB).Prepare(prog)
	if err != nil {
		t.Fatal(err)
	}
	opts := arb.ExecOpts{NoPrune: true, Stats: true}
	rawRes, rawProf, err := rawPQ.Exec(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	compRes, compProf, err := compPQ.Exec(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rc, cc := rawRes.Count(rawPQ.Queries()[0]), compRes.Count(compPQ.Queries()[0]); rc != cc || rc == 0 {
		t.Fatalf("selected %d on compressed, %d on raw", cc, rc)
	}
	if rawProf.Disk.Phase1.PhysicalBytes != rawProf.Disk.Phase1.Bytes {
		t.Fatalf("raw physical %d != logical %d", rawProf.Disk.Phase1.PhysicalBytes, rawProf.Disk.Phase1.Bytes)
	}
	if compProf.Disk.Phase1.PhysicalBytes != info.PayloadBytes {
		t.Fatalf("compressed full scan read %d physical bytes, container payload is %d",
			compProf.Disk.Phase1.PhysicalBytes, info.PayloadBytes)
	}
}
