// Benchmarks regenerating the paper's evaluation artifacts (see
// EXPERIMENTS.md for the full tables and cmd/arbbench for arbitrary
// scales):
//
//   - BenchmarkFig5Create — Figure 5, database creation, one sub-bench
//     per dataset. b.N iterations create the database from scratch;
//     bytes/op reports throughput over the .arb size.
//   - BenchmarkFig6* — Figure 6, one sub-bench per query size and
//     thread. Each iteration evaluates one random query of that size
//     over the on-disk database with two linear scans.
//   - BenchmarkStreamVsEngine — the Section 1 trade-off: the one-pass
//     streaming matcher versus the two-pass engine on the same queries.
//   - BenchmarkParallel — the Sections 6.2/7 application: workers
//     sweeping a warm engine over a balanced infix tree.
//
// Scale is controlled with ARB_BENCH_SCALE (fraction of the paper's
// dataset sizes; default 1/128 keeps `go test -bench=.` under a few
// minutes — pass 0.03125 for the EXPERIMENTS.md runs or 1.0 for the
// paper's full sizes).
package arb_test

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"arb"
	"arb/internal/bench"
	"arb/internal/core"
	"arb/internal/parallel"
	"arb/internal/storage"
	"arb/internal/stream"
	"arb/internal/tree"
	"arb/internal/workload"
)

func benchScale() float64 {
	if s := os.Getenv("ARB_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 1.0 / 128
}

// benchDir lazily creates the benchmark databases once per process.
var benchDir = sync.OnceValues(func() (map[string]string, error) {
	dir, err := os.MkdirTemp("", "arb-bench")
	if err != nil {
		return nil, err
	}
	_, bases, err := bench.Fig5(dir, benchScale())
	return bases, err
})

func BenchmarkFig5Create(b *testing.B) {
	scale := benchScale()
	for _, name := range []string{"Treebank", "ACGT-infix", "ACGT-flat", "SWISSPROT"} {
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			var bytes int64
			for i := 0; i < b.N; i++ {
				base := filepath.Join(dir, strconv.Itoa(i))
				var db *storage.DB
				var err error
				switch name {
				case "Treebank":
					db, _, err = workload.CreateTreebankDB(base, workload.DefaultTreebank(scale))
				case "SWISSPROT":
					db, _, err = workload.CreateSwissprotDB(base, workload.DefaultSwissprot(scale))
				default:
					seq := workload.Sequence(4, 1<<17-1)
					if name == "ACGT-flat" {
						db, err = workload.CreateFlatDB(base, seq)
					} else {
						db, err = workload.CreateInfixDB(base, seq)
					}
				}
				if err != nil {
					b.Fatal(err)
				}
				bytes = db.N * storage.NodeSize
				db.Close()
				os.Remove(base + ".arb")
				os.Remove(base + ".lab")
			}
			b.SetBytes(bytes)
		})
	}
}

// fig6Bench evaluates rotating queries of each size against the thread's
// database in secondary storage.
func fig6Bench(b *testing.B, th bench.Thread) {
	bases, err := benchDir()
	if err != nil {
		b.Fatal(err)
	}
	name := map[bench.Thread]string{
		bench.Treebank: "Treebank", bench.ACGTFlat: "ACGT-flat", bench.ACGTInfix: "ACGT-infix",
	}[th]
	db, err := storage.Open(bases[name])
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()

	for _, size := range []int{5, 10, 15} {
		b.Run("size="+strconv.Itoa(size), func(b *testing.B) {
			queries := th.Queries(size, 25)
			var selected int64
			b.SetBytes(db.N * storage.NodeSize * 2) // two linear scans
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rx := queries[i%len(queries)]
				prog, err := rx.Program(th.RStep())
				if err != nil {
					b.Fatal(err)
				}
				c, err := core.Compile(prog)
				if err != nil {
					b.Fatal(err)
				}
				e := core.NewEngine(c, db.Names)
				res, _, err := e.RunDisk(db, core.DiskOpts{})
				if err != nil {
					b.Fatal(err)
				}
				selected += res.Count(prog.Queries()[0])
			}
			_ = selected
		})
	}
}

func BenchmarkFig6Treebank(b *testing.B)  { fig6Bench(b, bench.Treebank) }
func BenchmarkFig6ACGTFlat(b *testing.B)  { fig6Bench(b, bench.ACGTFlat) }
func BenchmarkFig6ACGTInfix(b *testing.B) { fig6Bench(b, bench.ACGTInfix) }

// BenchmarkStreamVsEngine compares the one-pass streaming matcher with
// the two-pass engine on identical Treebank path queries (in memory, so
// the comparison isolates per-node work).
func BenchmarkStreamVsEngine(b *testing.B) {
	bases, err := benchDir()
	if err != nil {
		b.Fatal(err)
	}
	db, err := storage.Open(bases["Treebank"])
	if err != nil {
		b.Fatal(err)
	}
	t, err := db.ReadTree(context.Background())
	db.Close()
	if err != nil {
		b.Fatal(err)
	}
	queries := bench.Treebank.Queries(8, 25)

	b.Run("stream-1pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := stream.Compile(queries[i%len(queries)].StreamQuery())
			if err != nil {
				b.Fatal(err)
			}
			s := m.NewCountingSession()
			if err := tree.Emit(t, s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("engine-2pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prog, err := queries[i%len(queries)].Program(bench.Treebank.RStep())
			if err != nil {
				b.Fatal(err)
			}
			e, err := arb.NewEngine(prog, t.Names())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(t, core.RunOpts{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallel sweeps worker counts over a balanced infix tree with
// a warm engine (the steady state of Sections 6.2/7).
func BenchmarkParallel(b *testing.B) {
	t := workload.InfixTree(workload.Sequence(4, 1<<18-1))
	rx := workload.PathRegex{W1: []string{"T", "A"}, W2: []string{"C"}, W3: []string{"G"}}
	prog, err := rx.Program(workload.RInfix)
	if err != nil {
		b.Fatal(err)
	}
	e, err := arb.NewEngine(prog, t.Names())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := parallel.Run(e, t, 4); err != nil { // warm up
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := parallel.Run(e, t, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
