package arb_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"arb"
	"arb/internal/naive"
	"arb/internal/storage"
	"arb/internal/testutil"
	"arb/internal/xpath"
)

// batchCorpus returns the mixed query corpus the batch tests run over the
// catalog document: TMNF programs (including caterpillar paths and a
// multi-predicate program) and Core XPath queries, two of them multi-pass
// not(..) queries.
func batchCorpus(t testing.TB) []any {
	t.Helper()
	prog := func(src string, queries ...string) *arb.Program {
		p, err := arb.ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(queries) > 0 {
			if err := p.SetQueries(queries...); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	xq := func(src string) *arb.XPathQuery {
		q, err := arb.ParseXPath(src)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	return []any{
		prog(`QUERY :- Label[name];`),
		prog(`QUERY :- Label[item];`),
		prog(`QUERY :- V.Label[item].FirstChild.NextSibling*.Label[flag];`),
		prog(`QUERY :- Leaf, -Text;`),
		prog(`QUERY :- Label[flag]; QUERY2 :- Label[catalog];`, "QUERY", "QUERY2"),
		xq(`//item/name`),
		xq(`//item[flag]`),
		xq(`//item[not(flag)]`),
		xq(`//item[not(flag)]/name`),
	}
}

// scalarSelected runs every corpus query through its own PreparedQuery
// and returns, per member and per query predicate, the selected node ids.
func scalarSelected(t testing.TB, sess *arb.Session, corpus []any) [][][]arb.NodeID {
	t.Helper()
	out := make([][][]arb.NodeID, len(corpus))
	for i, item := range corpus {
		var pq *arb.PreparedQuery
		var err error
		switch q := item.(type) {
		case *arb.Program:
			pq, err = sess.Prepare(q)
		case *arb.XPathQuery:
			pq, err = sess.PrepareXPath(q)
		}
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := pq.Exec(context.Background(), arb.ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range pq.Queries() {
			out[i] = append(out[i], res.Selected(q))
		}
	}
	return out
}

func sameSelected(t testing.TB, label string, member int, got, want []arb.NodeID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s member %d: selected %d nodes, want %d", label, member, len(got), len(want))
	}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("%s member %d: selected node %d is %d, want %d", label, member, j, got[j], want[j])
		}
	}
}

// checkBatchAgainst compares a batch execution's results with the scalar
// reference, predicate by predicate.
func checkBatchAgainst(t testing.TB, label string, pb *arb.PreparedBatch, opts arb.ExecOpts, want [][][]arb.NodeID) {
	t.Helper()
	res, _, err := pb.Exec(context.Background(), opts)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if len(res) != len(want) {
		t.Fatalf("%s: %d results for %d members", label, len(res), len(want))
	}
	for i := range res {
		for qi, q := range pb.Queries(i) {
			sameSelected(t, label, i, res[i].Selected(q), want[i][qi])
		}
	}
}

// TestBatchDifferential is the batch differential test: a corpus of nine
// mixed queries (incl. multi-pass not(..) XPath) executed as one
// PreparedBatch over memory, disk and parallel-disk sessions selects
// bit-identical nodes to per-query PreparedQuery execution and to the
// naive-evaluation oracles.
func TestBatchDifferential(t *testing.T) {
	tr := buildCatalog(t, 1200)
	if tr.Len() < 1<<15 {
		t.Fatalf("catalog has %d nodes, below the parallel threshold", tr.Len())
	}
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	corpus := batchCorpus(t)
	memSess := arb.NewSession(tr)
	diskSess := arb.NewDBSession(db)
	want := scalarSelected(t, memSess, corpus)

	// Oracles: the naive fixpoint evaluator for TMNF members, the direct
	// XPath interpreter for XPath members.
	for i, item := range corpus {
		switch q := item.(type) {
		case *arb.Program:
			oracle := naive.Evaluate(tr, q)
			for qi, pred := range q.Queries() {
				sameSelected(t, "naive oracle", i, want[i][qi], oracle.Selected(pred))
			}
		case *arb.XPathQuery:
			truth := xpath.NewInterp(tr).Eval(q.Path)
			var sel []arb.NodeID
			for v, ok := range truth {
				if ok {
					sel = append(sel, arb.NodeID(v))
				}
			}
			sameSelected(t, "interp oracle", i, want[i][0], sel)
		}
	}

	memBatch, err := memSess.PrepareBatch(corpus...)
	if err != nil {
		t.Fatal(err)
	}
	diskBatch, err := diskSess.PrepareBatch(corpus...)
	if err != nil {
		t.Fatal(err)
	}
	// Pass scheduling: the deepest members have one aux pass plus their
	// main, so the whole nine-query batch runs in 2 scan pairs — not the
	// 11 a sequential execution would pay.
	if r := diskBatch.Rounds(); r != 2 {
		t.Fatalf("batch schedules %d rounds, want 2", r)
	}

	checkBatchAgainst(t, "batch-memory", memBatch, arb.ExecOpts{}, want)
	checkBatchAgainst(t, "batch-memory-parallel", memBatch, arb.ExecOpts{Workers: 4}, want)
	checkBatchAgainst(t, "batch-disk", diskBatch, arb.ExecOpts{}, want)
	checkBatchAgainst(t, "batch-disk-parallel", diskBatch, arb.ExecOpts{Workers: 4}, want)
	// Warm re-execution: persistent automata must not change results.
	checkBatchAgainst(t, "batch-disk-warm", diskBatch, arb.ExecOpts{}, want)

	counts, err := diskBatch.Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if wantc := int64(len(want[i][0])); counts[i] != wantc {
			t.Fatalf("Count member %d: %d, want %d", i, counts[i], wantc)
		}
	}
	assertOnlyDatabaseFiles(t, dir)
}

// TestBatchOrderIndependence is the property test: random subsets of the
// corpus, in random order, executed on both backends, always reproduce
// each member's scalar result — batch composition and position must not
// leak into any member's answer.
func TestBatchOrderIndependence(t *testing.T) {
	tr := buildCatalog(t, 500)
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	corpus := batchCorpus(t)
	memSess := arb.NewSession(tr)
	diskSess := arb.NewDBSession(db)
	want := scalarSelected(t, memSess, corpus)

	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		perm := rng.Perm(len(corpus))
		size := 1 + rng.Intn(len(corpus))
		sel := perm[:size]
		items := make([]any, size)
		wants := make([][][]arb.NodeID, size)
		for j, i := range sel {
			items[j] = corpus[i]
			wants[j] = want[i]
		}
		sess, name := memSess, "memory"
		if trial%2 == 1 {
			sess, name = diskSess, "disk"
		}
		pb, err := sess.PrepareBatch(items...)
		if err != nil {
			t.Fatal(err)
		}
		workers := 1
		if trial%4 >= 2 {
			workers = 3
		}
		label := fmt.Sprintf("trial %d (%s, %d workers, members %v)", trial, name, workers, sel)
		checkBatchAgainst(t, label, pb, arb.ExecOpts{Workers: workers}, wants)
	}
	assertOnlyDatabaseFiles(t, dir)
}

// TestBatchCancel checks batch cancellation: an already-cancelled context
// aborts sequential, parallel and multi-pass batch executions with
// ctx.Err(), and neither the widened state file nor any aux sidecar
// survives — on cancellation mid-scan either.
func TestBatchCancel(t *testing.T) {
	tr := buildCatalog(t, 1200)
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sess := arb.NewDBSession(db)
	pb, err := sess.PrepareBatch(batchCorpus(t)...)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, opts := range map[string]arb.ExecOpts{
		"sequential": {},
		"parallel":   {Workers: 4},
	} {
		if _, _, err := pb.Exec(ctx, opts); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error %v, want context.Canceled", name, err)
		}
	}
	assertOnlyDatabaseFiles(t, dir)

	// Concurrent cancellation: wherever the cancel lands, the invariant
	// is a clean result or ctx.Err(), and no leaked temp files.
	want := scalarSelected(t, sess, batchCorpus(t))
	for i := 0; i < 6; i++ {
		cctx, ccancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			res, _, err := pb.Exec(cctx, arb.ExecOpts{Workers: 2})
			if err == nil {
				for m := range res {
					for qi, q := range pb.Queries(m) {
						if got := res[m].Selected(q); len(got) != len(want[m][qi]) {
							err = fmt.Errorf("member %d: %d nodes, want %d", m, len(got), len(want[m][qi]))
							break
						}
					}
				}
			}
			done <- err
		}()
		ccancel()
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: error %v, want nil or context.Canceled", i, err)
		}
		assertOnlyDatabaseFiles(t, dir)
	}

	// The batch still answers correctly after cancellations.
	checkBatchAgainst(t, "after-cancel", pb, arb.ExecOpts{}, want)
}

// TestBatchRejectsUnsupportedOpts checks the documented ExecOpts
// restrictions and PrepareBatch's type validation.
func TestBatchRejectsUnsupportedOpts(t *testing.T) {
	tr := buildCatalog(t, 20)
	sess := arb.NewSession(tr)
	if _, err := sess.PrepareBatch(); err == nil {
		t.Error("empty PrepareBatch succeeded")
	}
	if _, err := sess.PrepareBatch("//item"); err == nil {
		t.Error("PrepareBatch accepted a plain string")
	}
	pb, err := sess.PrepareBatch(batchCorpus(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	var sink noopWriter
	if _, _, err := pb.Exec(context.Background(), arb.ExecOpts{MarkTo: sink}); err == nil {
		t.Error("batch Exec accepted MarkTo")
	}
	if _, _, err := pb.Exec(context.Background(), arb.ExecOpts{KeepStates: true}); err == nil {
		t.Error("batch Exec accepted KeepStates")
	}
}

type noopWriter struct{}

func (noopWriter) Write(p []byte) (int, error) { return len(p), nil }

// batchTwoScansQueries builds the 16 single-pass programs of the
// two-scans experiments: label tests and small structural patterns over
// the generated full-binary tags.
func batchTwoScansQueries(t testing.TB) []any {
	t.Helper()
	tags := []string{"a", "b", "c", "d"}
	var items []any
	for i := 0; i < 16; i++ {
		var src string
		switch i % 4 {
		case 0:
			src = fmt.Sprintf(`QUERY :- Label[%s];`, tags[(i/4)%4])
		case 1:
			src = fmt.Sprintf(`QUERY :- V.Label[%s].FirstChild.Label[%s];`, tags[(i/4)%4], tags[(i/4+1)%4])
		case 2:
			src = fmt.Sprintf(`QUERY :- Leaf, Label[%s];`, tags[(i/4)%4])
		case 3:
			src = fmt.Sprintf(`QUERY :- V.Label[%s].SecondChild.HasFirstChild;`, tags[(i/4)%4])
		}
		p, err := arb.ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, p)
	}
	return items
}

// checkTwoScans asserts the aggregate-I/O property on a database: one
// batch Exec of 16 queries reads the .arb data exactly once per phase —
// two linear scans for the whole batch — at each requested worker count.
func checkTwoScans(t *testing.T, base string, workerCounts []int, spotCheck bool) {
	t.Helper()
	sess, err := arb.OpenSession(base)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	pb, err := sess.PrepareBatch(batchTwoScansQueries(t)...)
	if err != nil {
		t.Fatal(err)
	}
	dataBytes := sess.Len() * storage.NodeSize
	for _, workers := range workerCounts {
		res, prof, err := pb.Exec(context.Background(), arb.ExecOpts{Workers: workers, Stats: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 16 {
			t.Fatalf("workers=%d: %d results, want 16", workers, len(res))
		}
		if prof.Passes != 1 {
			t.Fatalf("workers=%d: %d rounds for single-pass batch, want 1", workers, prof.Passes)
		}
		// The two-scan property, selectivity-pruning aware: every byte of
		// the database is either read or provably-irrelevant-and-skipped,
		// exactly once per aggregate phase — Bytes + SkippedBytes == 2 ×
		// database size over the two phases.
		p1 := prof.Disk.Phase1.Bytes + prof.Disk.Phase1.SkippedBytes
		p2 := prof.Disk.Phase2.Bytes + prof.Disk.Phase2.SkippedBytes
		if p1 != dataBytes || p2 != dataBytes {
			t.Fatalf("workers=%d: aggregate scans covered %d/%d data bytes (read %d/%d, skipped %d/%d), want exactly %d per phase (two linear scans for the whole batch)",
				workers, p1, p2, prof.Disk.Phase1.Bytes, prof.Disk.Phase2.Bytes,
				prof.Disk.Phase1.SkippedBytes, prof.Disk.Phase2.SkippedBytes, dataBytes)
		}
		if !spotCheck {
			continue
		}
		// Spot-check a member against its own scalar run.
		pq, err := sess.Prepare(pb.Program(3))
		if err != nil {
			t.Fatal(err)
		}
		n, err := pq.Count(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got := res[3].Count(pb.Queries(3)[0]); got != n {
			t.Fatalf("workers=%d: member 3 selected %d nodes, scalar %d", workers, got, n)
		}
	}
}

// TestBatchTwoScans asserts the exactly-two-aggregate-linear-scans
// property of a 16-query batch via the Profile bytes-read counters, on a
// moderate generated database.
func TestBatchTwoScans(t *testing.T) {
	base := filepath.Join(t.TempDir(), "fb")
	db, err := storage.CreateFullBinary(base, 16, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	checkTwoScans(t, base, []int{1, 4}, true)
}

// TestBatchTwoScansLarge is the full-size acceptance experiment: a 16
// query batch over a >= 64 MB generated database still performs exactly
// two aggregate linear scans. Skipped under -short and under the race
// detector (the instrumented inner loops would blow the CI budget; the
// property itself is size-independent and covered above).
func TestBatchTwoScansLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("64 MB database experiment skipped in -short mode")
	}
	if testutil.RaceEnabled {
		t.Skip("64 MB database experiment skipped under the race detector")
	}
	base := filepath.Join(t.TempDir(), "fb")
	db, err := storage.CreateFullBinary(base, 24, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	n := db.N
	db.Close()
	if bytes := n * storage.NodeSize; bytes < 64_000_000 {
		t.Fatalf("generated database is %d bytes, want >= 64 MB", bytes)
	}
	// One sequential execution: the bytes counters are what is under
	// test, and the parallel path's counters are covered on the moderate
	// database above. arbbench -experiment batch is the timing companion.
	checkTwoScans(t, base, []int{1}, false)
}
