package arb_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"arb"
)

// Example builds a database from XML, evaluates a caterpillar TMNF query
// over it in two linear scans, and prints the match count.
func Example() {
	dir, err := os.MkdirTemp("", "arb-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	doc := `<genes><gene><seq>ACCGT</seq></gene><gene><seq>TTTT</seq></gene></genes>`
	db, _, err := arb.CreateDB(filepath.Join(dir, "genes"), strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	sess := arb.NewDBSession(db)
	defer db.Close()

	// Genes whose sequence text contains "CC": the walk descends from a
	// gene to its seq child, into the text, and along the character
	// siblings to a C followed by a C.
	prog, err := arb.ParseProgram(`
		Hit   :- V.Char[C].NextSibling.Char[C];
		HasC  :- Hit;
		HasC  :- HasC.invNextSibling;
		InSeq :- HasC.invFirstChild;
		Seq   :- Label[seq], InSeq;
		Up    :- Seq;
		Up    :- Up.invNextSibling;
		AtG   :- Up.invFirstChild;
		QUERY :- Label[gene], AtG;
	`)
	if err != nil {
		log.Fatal(err)
	}
	pq, err := sess.Prepare(prog)
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := pq.Exec(context.Background(), arb.ExecOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matching genes:", res.Count(pq.Queries()[0]))
	// Output: matching genes: 1
}

// ExampleSession shows the session lifecycle: open one source, prepare
// queries once, execute them repeatedly — sequentially, in parallel, and
// with a deadline — always through the same Exec call.
func ExampleSession() {
	dir, err := os.MkdirTemp("", "arb-example-session")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	doc := `<lib><book><author>X</author><author>Y</author></book><book><author>Z</author></book><book/></lib>`
	db, _, err := arb.CreateDB(filepath.Join(dir, "lib"), strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	db.Close()

	// A session owns the open database and everything its queries
	// share; prepared queries keep their automata warm across Execs.
	sess, err := arb.OpenSession(filepath.Join(dir, "lib"))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// not(..) needs an auxiliary pass; Exec chains the passes through
	// aux-mask sidecar files, entirely in secondary storage.
	xq, err := arb.ParseXPath(`//book[not(author)]`)
	if err != nil {
		log.Fatal(err)
	}
	pq, err := sess.PrepareXPath(xq)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	res, _, err := pq.Exec(ctx, arb.ExecOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("books without authors:", res.Count(pq.Queries()[0]))

	// The same prepared query, now with a deadline and parallel
	// workers: the result is identical, and a cancelled context would
	// abort the scans promptly with ctx.Err().
	ctx2, cancel := context.WithTimeout(ctx, 30e9)
	defer cancel()
	res, prof, err := pq.Exec(ctx2, arb.ExecOpts{Workers: -1, Stats: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("again:", res.Count(pq.Queries()[0]), "passes:", prof.Passes)
	// Output:
	// books without authors: 1
	// again: 1 passes: 2
}

// ExampleSession_PrepareBatch answers a mixed workload — a TMNF program,
// a positive XPath query and a multi-pass not(..) query — in shared
// scans: the whole batch costs two scan pairs instead of one per pass
// per query, and every result is identical to a stand-alone execution.
func ExampleSession_PrepareBatch() {
	dir, err := os.MkdirTemp("", "arb-example-batch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	doc := `<lib><book><author>X</author><author>Y</author></book><book><author>Z</author></book><book/></lib>`
	db, _, err := arb.CreateDB(filepath.Join(dir, "lib"), strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	sess := arb.NewDBSession(db)
	defer sess.Close()

	books, err := arb.ParseProgram(`QUERY :- Label[book];`)
	if err != nil {
		log.Fatal(err)
	}
	authors, err := arb.ParseXPath(`//book/author`)
	if err != nil {
		log.Fatal(err)
	}
	empty, err := arb.ParseXPath(`//book[not(author)]`)
	if err != nil {
		log.Fatal(err)
	}
	pb, err := sess.PrepareBatch(books, authors, empty)
	if err != nil {
		log.Fatal(err)
	}
	counts, err := pb.Count(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("books:", counts[0], "authors:", counts[1], "empty:", counts[2], "rounds:", pb.Rounds())
	// Output: books: 3 authors: 3 empty: 1 rounds: 2
}

// ExampleParseXPath evaluates a Core XPath query with a negated
// condition through multi-pass evaluation over an in-memory tree.
func ExampleParseXPath() {
	doc := `<lib><book><author>X</author></book><book/></lib>`
	t, err := arb.ParseXML(strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	q, err := arb.ParseXPath(`//book[not(author)]`)
	if err != nil {
		log.Fatal(err)
	}
	pq, err := arb.NewSession(t).PrepareXPath(q)
	if err != nil {
		log.Fatal(err)
	}
	n, err := pq.Count(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("books without authors:", n)
	// Output: books without authors: 1
}
