package arb_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"arb"
)

// Example builds a database from XML, evaluates a caterpillar TMNF query
// over it in two linear scans, and prints the match count.
func Example() {
	dir, err := os.MkdirTemp("", "arb-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	doc := `<genes><gene><seq>ACCGT</seq></gene><gene><seq>TTTT</seq></gene></genes>`
	db, _, err := arb.CreateDB(filepath.Join(dir, "genes"), strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Genes whose sequence text contains "CC": the walk descends from a
	// gene to its seq child, into the text, and along the character
	// siblings to a C followed by a C.
	prog, err := arb.ParseProgram(`
		Hit   :- V.Char[C].NextSibling.Char[C];
		HasC  :- Hit;
		HasC  :- HasC.invNextSibling;
		InSeq :- HasC.invFirstChild;
		Seq   :- Label[seq], InSeq;
		Up    :- Seq;
		Up    :- Up.invNextSibling;
		AtG   :- Up.invFirstChild;
		QUERY :- Label[gene], AtG;
	`)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := arb.NewEngine(prog, db.Names)
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := eng.RunDisk(db, arb.DiskOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matching genes:", res.Count(prog.Queries()[0]))
	// Output: matching genes: 1
}

// ExampleParseXPath evaluates a Core XPath query with a negated
// condition through multi-pass evaluation.
func ExampleParseXPath() {
	doc := `<lib><book><author>X</author></book><book/></lib>`
	t, err := arb.ParseXML(strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	q, err := arb.ParseXPath(`//book[not(author)]`)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := q.Eval(t)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for _, ok := range sel {
		if ok {
			n++
		}
	}
	fmt.Println("books without authors:", n)
	// Output: books without authors: 1
}
