#!/bin/sh
# CI entry point: formatting, vet, build, and the full test suite under
# the race detector (the tier-1 gate plus race coverage of the parallel
# in-memory and parallel secondary-storage paths).
set -eu

cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
