#!/bin/sh
# CI entry point: formatting, vet, build, a fast cancellation gate, a
# library smoke test, and the full test suite under the race detector
# (the tier-1 gate plus race coverage of the parallel in-memory and
# parallel secondary-storage paths).
set -eu

cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...

# Repo-specific invariants: context threading, lock discipline, temp
# cleanup, deprecated shims, reader Close/Release, snapshot-pin
# release, atomic/plain access mixing, goroutine termination, and lock
# ordering — the full nine-analyzer suite, gated on the committed
# baseline: any finding not already recorded there fails the build.
go run ./cmd/arblint -baseline .arblint-baseline.json ./...

# The analyzers' own fixtures (want-marker tests, CFG unit tests, the
# baseline round-trip, and the repo-is-clean driver gates) under the
# race detector: the lint framework shells out to `go list` and builds
# module summaries concurrently with test parallelism.
go test -race ./internal/lint/... ./cmd/arblint

# External analyzers when the toolchain provides them. The CI image has
# no network, so they cannot be fetched or version-pinned here; any
# PATH-installed copy is used, otherwise they are skipped.
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
fi
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./...
fi

# Smoke: the quickstart example exercises the whole Session/PreparedQuery
# surface (create DB, prepare TMNF and XPath queries, Exec, emit marked
# XML) against its own tiny generated document; batchserve exercises the
# shared-scan PreparedBatch surface the same way; serve starts the HTTP
# query server, queries it over the wire and drains it.
go run ./examples/quickstart > /dev/null
go run ./examples/batchserve > /dev/null
go run ./examples/serve > /dev/null

# arb serve smoke: the built binary starts, answers TMNF and XPath
# queries over HTTP, serves /stats, and drains cleanly on SIGTERM.
go test -run CLIServe ./...

# arb patch smoke: create a database, patch it through the CLI, query
# old-shape vs new-shape, compact, and emit the patched document.
patchdir=$(mktemp -d)
trap 'rm -rf "$patchdir"' EXIT
go build -o "$patchdir/arb" ./cmd/arb
printf '<doc><a><b>x</b></a><c>y</c></doc>' > "$patchdir/doc.xml"
"$patchdir/arb" create "$patchdir/db" "$patchdir/doc.xml" > /dev/null
before=$("$patchdir/arb" query "$patchdir/db" -xpath '//a/b')
"$patchdir/arb" patch "$patchdir/db" -op insert-child -node 1 -xml '<b>z</b>' > /dev/null
after=$("$patchdir/arb" query "$patchdir/db" -xpath '//a/b')
if [ "$before" = "$after" ]; then
    echo "patch smoke: //a/b unchanged after insert-child ($before)" >&2
    exit 1
fi
"$patchdir/arb" compact "$patchdir/db" > /dev/null
compacted=$("$patchdir/arb" query "$patchdir/db" -xpath '//a/b')
if [ "$after" != "$compacted" ]; then
    echo "patch smoke: compaction changed //a/b ($after vs $compacted)" >&2
    exit 1
fi
"$patchdir/arb" cat "$patchdir/db" | grep -q '<b>z</b>' || {
    echo "patch smoke: cat does not show the patched subtree" >&2
    exit 1
}

# Result cache smoke: serve with -rescache, ask the same query twice,
# and require /stats to report a result-cache hit (the second answer
# came from memory, not a scan).
"$patchdir/arb" serve "$patchdir/db" -addr 127.0.0.1:18339 -rescache 16m > "$patchdir/serve.log" 2>&1 &
servepid=$!
for i in $(seq 1 50); do
    grep -q 'serving' "$patchdir/serve.log" && break
    sleep 0.1
done
curl -sf 'http://127.0.0.1:18339/query?q=xpath://a/b' > /dev/null
second=$(curl -sf 'http://127.0.0.1:18339/query?q=xpath://a/b')
hits=$(curl -sf 'http://127.0.0.1:18339/stats' | grep -o '"hits": [0-9]*' | head -1 | grep -o '[0-9]*')
kill "$servepid" 2>/dev/null; wait "$servepid" 2>/dev/null || true
echo "$second" | grep -q '"result_cache": "hit"' || {
    echo "rescache smoke: second answer was not served from the cache" >&2
    exit 1
}
if [ "${hits:-0}" -lt 1 ]; then
    echo "rescache smoke: /stats reports no result-cache hits" >&2
    exit 1
fi

# Compression smoke: create a compressed database through the CLI,
# query it (results must match the raw database), and check that stats
# reports the container.
awk 'BEGIN { printf "<doc>"; for (i = 0; i < 2000; i++) printf "<a><b>x</b></a>"; printf "</doc>" }' \
    > "$patchdir/big.xml"
"$patchdir/arb" create "$patchdir/rawdb" "$patchdir/big.xml" > /dev/null
"$patchdir/arb" create "$patchdir/zdb" -compress "$patchdir/big.xml" > /dev/null
rawq=$("$patchdir/arb" query "$patchdir/rawdb" -xpath '//a/b')
zq=$("$patchdir/arb" query "$patchdir/zdb" -xpath '//a/b')
if [ "$rawq" != "$zq" ]; then
    echo "compress smoke: compressed query ($zq) differs from raw ($rawq)" >&2
    exit 1
fi
"$patchdir/arb" stats "$patchdir/zdb" | grep -q 'compressed: lz codec' || {
    echo "compress smoke: stats does not report the container" >&2
    exit 1
}

# Fast gates: context-cancellation behaviour across storage, the engine
# and the CLI, the shared-scan batch machinery (differential, order
# independence, cancellation cleanup), selectivity-aware pruning
# (analysis admission, v2 index, prune-vs-noprune differentials across
# all strategies), and the concurrent query server (reentrant handles,
# coalescing differential vs scalar execution, drain), each under the
# race detector.
go test -run Cancel -race ./...
go test -run Batch -race ./...
go test -run Prune -race ./...
go test -run Serve -race ./...
# Compressed extents: container round-trips, all-strategy differentials
# on compressed databases, vstore write-policy inheritance, and the
# rename-commit directory-sync hooks.
go test -run 'Compress|SyncDir' -race ./...
# The versioned extent store: manifest fuzz seeds, the vstore and
# root-level patch differentials, snapshot isolation/GC, and the
# concurrent read-while-patching server race.
go test -run 'Patch|Version|Snapshot' -race ./...
# The result cache: unit invariants (budget, eviction, version
# demotion), cached/subsumed answers bit-identical to every strategy
# under version churn, selection-summary subsumption soundness, and
# the server fast path + admission control.
go test -run 'ResCache|Subsum' -race ./...

# Full suite (includes the fuzz targets' seed corpora), with shuffled
# test order so inter-test state dependencies cannot hide.
go test -shuffle=on -race ./...
