package arb_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"arb"
	"arb/internal/core"
	"arb/internal/storage"
)

// buildPruneDoc builds a library document with alternating sections:
// "archive" sections full of junk elements and filler text (dead for
// catalog queries, live for //junk), and "catalog" sections of
// item/name/flag structure (the reverse). Each section is thousands of
// nodes, so whole sections are index extents the pruner can seek past
// with the default thresholds.
func buildPruneDoc(tb testing.TB, sections, perSection int) *arb.Tree {
	tb.Helper()
	b := arb.NewTreeBuilder()
	must := func(err error) {
		tb.Helper()
		if err != nil {
			tb.Fatal(err)
		}
	}
	must(b.Begin("library"))
	for s := 0; s < sections; s++ {
		if s%2 == 0 {
			must(b.Begin("archive"))
			for j := 0; j < perSection; j++ {
				must(b.Begin("junk"))
				must(b.Text([]byte(fmt.Sprintf("filler-%05d-%08x", j, uint32(j)*2654435761))))
				must(b.End())
			}
			must(b.End())
		} else {
			must(b.Begin("catalog"))
			for i := 0; i < perSection; i++ {
				must(b.Begin("item"))
				must(b.Begin("name"))
				must(b.Text([]byte(fmt.Sprintf("product-%06d", i))))
				must(b.End())
				if i%3 != 0 {
					must(b.Begin("flag"))
					must(b.Text([]byte("y")))
					must(b.End())
				}
				must(b.End())
			}
			must(b.End())
		}
	}
	must(b.End())
	t, err := b.Tree()
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

// pruneQueries returns the differential corpus: queries for which
// pruning provably fires (label-selective, both directions), a
// multi-pass not(..) query (pass 0 prunes, the aux-reading main pass
// must not), and a label-independent query the analysis must refuse.
func pruneQueries(t testing.TB) []any {
	t.Helper()
	prog := func(src string) *arb.Program {
		p, err := arb.ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	xq := func(src string) *arb.XPathQuery {
		q, err := arb.ParseXPath(src)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	return []any{
		prog(`QUERY :- Label[junk];`),
		xq(`//item/name`),
		xq(`//item[flag]`),
		xq(`//item[not(flag)]/name`),
		prog(`QUERY :- Leaf, -Text;`),
	}
}

// prepare compiles one corpus item against a session.
func prepare(t testing.TB, sess *arb.Session, item any) *arb.PreparedQuery {
	t.Helper()
	var pq *arb.PreparedQuery
	var err error
	switch q := item.(type) {
	case *arb.Program:
		pq, err = sess.Prepare(q)
	case *arb.XPathQuery:
		pq, err = sess.PrepareXPath(q)
	default:
		t.Fatalf("bad corpus item %T", item)
	}
	if err != nil {
		t.Fatal(err)
	}
	return pq
}

// TestPruneDifferentialStrategies is the prune-vs-noprune differential
// across every strategy: for each corpus query, the pruned execution
// must select bit-identical nodes to the unpruned one on memory, disk,
// parallel memory and parallel disk — and on the disk paths of the
// prunable queries, the profile must show bytes actually skipped while
// Bytes + SkippedBytes stays exactly one database size per phase.
func TestPruneDifferentialStrategies(t *testing.T) {
	tr := buildPruneDoc(t, 8, 300)
	if tr.Len() < 1<<15 {
		t.Fatalf("prune doc has %d nodes, below the parallel threshold", tr.Len())
	}
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "library"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	dataBytes := db.N * storage.NodeSize

	memSess := arb.NewSession(tr)
	diskSess := arb.NewDBSession(db)

	for qi, item := range pruneQueries(t) {
		memPQ := prepare(t, memSess, item)
		diskPQ := prepare(t, diskSess, item)
		// The unpruned memory run is the reference.
		want := selectedOf(t, memPQ, arb.ExecOpts{NoPrune: true})

		type strat struct {
			name string
			pq   *arb.PreparedQuery
			opts arb.ExecOpts
			disk bool
		}
		strats := []strat{
			{"memory", memPQ, arb.ExecOpts{}, false},
			{"memory-parallel", memPQ, arb.ExecOpts{Workers: 4}, false},
			{"disk", diskPQ, arb.ExecOpts{}, true},
			{"disk-parallel", diskPQ, arb.ExecOpts{Workers: 4}, true},
			{"disk-noprune", diskPQ, arb.ExecOpts{NoPrune: true}, true},
			{"disk-parallel-noprune", diskPQ, arb.ExecOpts{Workers: 4, NoPrune: true}, true},
		}
		for _, s := range strats {
			s.opts.Stats = true
			res, prof, err := s.pq.Exec(context.Background(), s.opts)
			if err != nil {
				t.Fatalf("query %d %s: %v", qi, s.name, err)
			}
			got := res.Selected(s.pq.Queries()[0])
			if len(got) != len(want) {
				t.Fatalf("query %d %s: %d nodes selected, want %d", qi, s.name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("query %d %s: selected[%d] = %d, want %d", qi, s.name, i, got[i], want[i])
				}
			}
			if s.disk {
				// Every phase covers the database exactly once, read or
				// skipped, across all passes of the execution.
				passes := int64(prof.Passes)
				p1 := prof.Disk.Phase1.Bytes + prof.Disk.Phase1.SkippedBytes
				p2 := prof.Disk.Phase2.Bytes + prof.Disk.Phase2.SkippedBytes
				if p1 != passes*dataBytes || p2 != passes*dataBytes {
					t.Fatalf("query %d %s: phase coverage %d/%d, want %d", qi, s.name, p1, p2, passes*dataBytes)
				}
				if s.opts.NoPrune && prof.SkippedBytes() != 0 {
					t.Fatalf("query %d %s: NoPrune run skipped %d bytes", qi, s.name, prof.SkippedBytes())
				}
			}
			// The prunable queries must actually prune on the default
			// paths (query 4 is label-independent by construction).
			prunable := qi < 4
			if !s.opts.NoPrune {
				if prunable && prof.Engine.PrunedNodes == 0 {
					t.Fatalf("query %d %s: expected pruning to fire", qi, s.name)
				}
				if !prunable && prof.Engine.PrunedNodes != 0 {
					t.Fatalf("query %d %s: label-independent query pruned %d nodes", qi, s.name, prof.Engine.PrunedNodes)
				}
				if s.disk && prunable && prof.SkippedBytes() == 0 {
					t.Fatalf("query %d %s: expected skipped bytes", qi, s.name)
				}
			}
		}
	}
	assertOnlyDatabaseFiles(t, dir)
}

// TestPruneBatchDifferential checks shared-scan batches: a batch of
// catalog-only queries prunes the archive sections on both backends and
// at both worker counts, selecting exactly what the unpruned batch does;
// a mixed batch (including //junk, live everywhere in archives) must
// simply stop pruning, not misselect.
func TestPruneBatchDifferential(t *testing.T) {
	tr := buildPruneDoc(t, 8, 300)
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "library"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	memSess := arb.NewSession(tr)
	diskSess := arb.NewDBSession(db)
	catalogOnly := pruneQueries(t)[1:4] // //item/name, //item[flag], //item[not(flag)]/name
	mixed := pruneQueries(t)

	for _, tc := range []struct {
		name        string
		items       []any
		wantPruning bool
	}{
		{"catalog-only", catalogOnly, true},
		{"mixed", mixed, false},
	} {
		for _, backend := range []struct {
			name string
			sess *arb.Session
			disk bool
		}{{"memory", memSess, false}, {"disk", diskSess, true}} {
			pb, err := backend.sess.PrepareBatch(tc.items...)
			if err != nil {
				t.Fatal(err)
			}
			wantRes, _, err := pb.Exec(context.Background(), arb.ExecOpts{NoPrune: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				res, prof, err := pb.Exec(context.Background(), arb.ExecOpts{Workers: workers, Stats: true})
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", tc.name, backend.name, workers, err)
				}
				for m := range res {
					for _, q := range pb.Queries(m) {
						got, want := res[m].Selected(q), wantRes[m].Selected(q)
						if len(got) != len(want) {
							t.Fatalf("%s/%s workers=%d member %d: %d selected, want %d",
								tc.name, backend.name, workers, m, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("%s/%s workers=%d member %d: selected[%d]=%d, want %d",
									tc.name, backend.name, workers, m, i, got[i], want[i])
							}
						}
					}
				}
				if tc.wantPruning && prof.Engine.PrunedNodes == 0 {
					t.Fatalf("%s/%s workers=%d: expected batch pruning to fire", tc.name, backend.name, workers)
				}
				if backend.disk && tc.wantPruning && prof.SkippedBytes() == 0 {
					t.Fatalf("%s/%s workers=%d: expected skipped bytes", tc.name, backend.name, workers)
				}
			}
		}
	}
	assertOnlyDatabaseFiles(t, dir)
}

// TestPruneRandomDifferential is the property test: random clustered
// trees × random label queries, executed pruned and unpruned on every
// strategy, must agree node-for-node. Thresholds are lowered so pruning
// fires on the small random documents.
func TestPruneRandomDifferential(t *testing.T) {
	defer func(n, x int64) { core.PruneMinNodes, core.PruneMinExtent = n, x }(core.PruneMinNodes, core.PruneMinExtent)
	core.PruneMinNodes, core.PruneMinExtent = 512, 64

	rng := rand.New(rand.NewSource(1234))
	tags := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 12; trial++ {
		// A random clustered document: sections of a single tag each, so
		// label-disjoint subtrees genuinely exist.
		b := arb.NewTreeBuilder()
		if err := b.Begin("root"); err != nil {
			t.Fatal(err)
		}
		sections := 3 + rng.Intn(5)
		for s := 0; s < sections; s++ {
			tag := tags[rng.Intn(len(tags))]
			if err := b.Begin(tag + "s"); err != nil {
				t.Fatal(err)
			}
			for j, nj := 0, 50+rng.Intn(200); j < nj; j++ {
				if err := b.Begin(tag); err != nil {
					t.Fatal(err)
				}
				if rng.Intn(2) == 0 {
					if err := b.Text([]byte("xy")); err != nil {
						t.Fatal(err)
					}
				}
				if err := b.End(); err != nil {
					t.Fatal(err)
				}
			}
			if err := b.End(); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.End(); err != nil {
			t.Fatal(err)
		}
		tr, err := b.Tree()
		if err != nil {
			t.Fatal(err)
		}

		dir := t.TempDir()
		db, err := arb.CreateDBFromTree(filepath.Join(dir, "doc"), tr)
		if err != nil {
			t.Fatal(err)
		}

		tag := tags[rng.Intn(len(tags))]
		var item any
		if rng.Intn(2) == 0 {
			item, err = arb.ParseProgram(fmt.Sprintf(`QUERY :- Label[%s];`, tag))
		} else {
			item, err = arb.ParseXPath(fmt.Sprintf(`//%ss/%s`, tag, tag))
		}
		if err != nil {
			t.Fatal(err)
		}

		memSess := arb.NewSession(tr)
		diskSess := arb.NewDBSession(db)
		memPQ := prepare(t, memSess, item)
		diskPQ := prepare(t, diskSess, item)
		want := selectedOf(t, memPQ, arb.ExecOpts{NoPrune: true})
		for name, sel := range map[string][]arb.NodeID{
			"memory":        selectedOf(t, memPQ, arb.ExecOpts{}),
			"memory-par":    selectedOf(t, memPQ, arb.ExecOpts{Workers: 3}),
			"disk":          selectedOf(t, diskPQ, arb.ExecOpts{}),
			"disk-par":      selectedOf(t, diskPQ, arb.ExecOpts{Workers: 3}),
			"disk-noprune":  selectedOf(t, diskPQ, arb.ExecOpts{NoPrune: true}),
			"disk-par-np":   selectedOf(t, diskPQ, arb.ExecOpts{Workers: 3, NoPrune: true}),
			"memory-np-par": selectedOf(t, memPQ, arb.ExecOpts{Workers: 3, NoPrune: true}),
		} {
			if len(sel) != len(want) {
				t.Fatalf("trial %d %s (%v): %d selected, want %d", trial, name, item, len(sel), len(want))
			}
			for i := range sel {
				if sel[i] != want[i] {
					t.Fatalf("trial %d %s: selected[%d]=%d, want %d", trial, name, i, sel[i], want[i])
				}
			}
		}
		db.Close()
		assertOnlyDatabaseFiles(t, dir)
	}
}

// TestPruneCancelNoLeak checks cancellation during pruned executions:
// wherever the cancel lands — including mid-skip — the result is either
// clean or ctx.Err(), and no state file or aux sidecar survives.
func TestPruneCancelNoLeak(t *testing.T) {
	tr := buildPruneDoc(t, 8, 300)
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "library"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sess := arb.NewDBSession(db)
	pq := prepare(t, sess, pruneQueries(t)[3]) // multi-pass: aux sidecars in play
	want, err := pq.Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		workers := 1 + (i%2)*3
		go func() {
			res, _, err := pq.Exec(ctx, arb.ExecOpts{Workers: workers})
			if err == nil && res.Count(pq.Queries()[0]) != want {
				err = fmt.Errorf("selected %d nodes, want %d", res.Count(pq.Queries()[0]), want)
			}
			done <- err
		}()
		cancel()
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: error %v, want nil or context.Canceled", i, err)
		}
		assertOnlyDatabaseFiles(t, dir)
	}
}
