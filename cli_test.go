package arb_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles cmd/arb once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "arb")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/arb")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/arb: %v\n%s", err, out)
	}
	return bin
}

func runCLI(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("arb %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "doc.xml")
	base := filepath.Join(dir, "db")
	if err := os.WriteFile(xmlPath, []byte(libraryXML), 0o644); err != nil {
		t.Fatal(err)
	}

	out := runCLI(t, bin, "create", base, xmlPath)
	if !strings.Contains(out, "8 element nodes, 5 character nodes") {
		t.Fatalf("create output: %s", out)
	}

	out = runCLI(t, bin, "stats", base)
	if !strings.Contains(out, "13 nodes") {
		t.Fatalf("stats output: %s", out)
	}

	out = runCLI(t, bin, "query", base, "-q", "QUERY :- Label[author];")
	if !strings.Contains(out, "3 nodes selected") {
		t.Fatalf("query output: %s", out)
	}

	// -j routes through the parallel disk evaluator (which falls back to
	// the sequential scans on a document this small) with identical
	// results.
	out = runCLI(t, bin, "query", base, "-j", "4", "-q", "QUERY :- Label[author];")
	if !strings.Contains(out, "3 nodes selected") {
		t.Fatalf("parallel query output: %s", out)
	}

	out = runCLI(t, bin, "query", base, "-j", "0", "-xpath", "//book[not(author/following-sibling::author)]/title")
	if !strings.Contains(out, "1 nodes selected") {
		t.Fatalf("parallel negated xpath output: %s", out)
	}

	out = runCLI(t, bin, "query", base, "-xpath", "//book/title")
	if !strings.Contains(out, "2 nodes selected") {
		t.Fatalf("xpath output: %s", out)
	}

	// Negated XPath goes through the in-memory multi-pass path.
	out = runCLI(t, bin, "query", base, "-xpath", "//book[not(author/following-sibling::author)]/title")
	if !strings.Contains(out, "1 nodes selected") {
		t.Fatalf("negated xpath output: %s", out)
	}

	out = runCLI(t, bin, "query", base, "-q", "QUERY :- Label[title];", "-ids")
	ids := strings.Fields(out)
	if len(ids) != 2 {
		t.Fatalf("ids output: %s", out)
	}

	out = runCLI(t, bin, "query", base, "-q", "QUERY :- Label[title];", "-mark")
	if strings.Count(out, `arb:selected="true"`) != 2 {
		t.Fatalf("mark output: %s", out)
	}

	out = runCLI(t, bin, "cat", base)
	if !strings.Contains(out, "<lib><book><title>A</title>") {
		t.Fatalf("cat output: %s", out)
	}

	// Errors are reported, not panicked.
	if _, err := exec.Command(bin, "query", base, "-q", "nonsense").CombinedOutput(); err == nil {
		t.Fatal("bad program accepted")
	}
	if _, err := exec.Command(bin, "query", filepath.Join(dir, "missing"), "-q", "QUERY :- Root;").CombinedOutput(); err == nil {
		t.Fatal("missing database accepted")
	}
}

// TestCLIBatchMode runs a workload file through `query -f file -batch`:
// per-query counts in input order, comments and xpath: lines handled,
// incompatible flags rejected.
func TestCLIBatchMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "doc.xml")
	dbDir := filepath.Join(dir, "dbdir")
	if err := os.Mkdir(dbDir, 0o755); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dbDir, "db")
	if err := os.WriteFile(xmlPath, []byte(libraryXML), 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, bin, "create", base, xmlPath)

	workload := filepath.Join(dir, "queries.txt")
	if err := os.WriteFile(workload, []byte(`# the workload
QUERY :- Label[author];
xpath: //book/title
xpath: //book[not(author/following-sibling::author)]/title
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, bin, "query", base, "-f", workload, "-batch")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("batch output has %d lines, want 3:\n%s", len(lines), out)
	}
	for i, want := range []string{"3 nodes selected", "2 nodes selected", "1 nodes selected"} {
		if !strings.Contains(lines[i], want) {
			t.Fatalf("batch line %d = %q, want %q", i, lines[i], want)
		}
	}

	// Same workload in parallel mode: identical counts.
	if out2 := runCLI(t, bin, "query", base, "-f", workload, "-batch", "-j", "4"); out2 != out {
		t.Fatalf("parallel batch output differs:\n%s\nvs\n%s", out2, out)
	}

	// -batch needs -f, and refuses per-query output modes.
	if _, err := exec.Command(bin, "query", base, "-batch", "-q", "QUERY :- Root;").CombinedOutput(); err == nil {
		t.Fatal("-batch without -f accepted")
	}
	if _, err := exec.Command(bin, "query", base, "-f", workload, "-batch", "-ids").CombinedOutput(); err == nil {
		t.Fatal("-batch -ids accepted")
	}
	// No stray temp files next to the database.
	assertOnlyDatabaseFiles(t, dbDir)
}

// TestCLITimeoutCancel checks the -timeout flag: an expired deadline
// aborts the query with a clear message and a non-zero exit, and works
// normally when the deadline is generous.
func TestCLITimeoutCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "doc.xml")
	base := filepath.Join(dir, "db")
	if err := os.WriteFile(xmlPath, []byte(libraryXML), 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, bin, "create", base, xmlPath)

	// A generous deadline: the query completes normally.
	out := runCLI(t, bin, "query", base, "-timeout", "1m", "-q", "QUERY :- Label[author];")
	if !strings.Contains(out, "3 nodes selected") {
		t.Fatalf("query with timeout output: %s", out)
	}

	// An already-expired deadline: non-zero exit and a clear message,
	// on the plain and the multi-pass XPath paths alike.
	for _, args := range [][]string{
		{"query", base, "-timeout", "1ns", "-q", "QUERY :- Label[author];"},
		{"query", base, "-timeout", "1ns", "-j", "4", "-xpath", "//book[not(author)]"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			t.Fatalf("arb %s exited zero despite expired deadline\n%s", strings.Join(args, " "), out)
		}
		if !strings.Contains(string(out), "timed out") {
			t.Fatalf("arb %s: message does not mention the timeout: %s", strings.Join(args, " "), out)
		}
	}
	// No stray temporary files next to the database.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".arb", ".lab", ".idx", ".xml":
		default:
			t.Errorf("stray file after timeout: %s", e.Name())
		}
	}
}
