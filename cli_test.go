package arb_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"arb/internal/storage"
)

// buildCLI compiles cmd/arb once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "arb")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/arb")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/arb: %v\n%s", err, out)
	}
	return bin
}

func runCLI(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("arb %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "doc.xml")
	base := filepath.Join(dir, "db")
	if err := os.WriteFile(xmlPath, []byte(libraryXML), 0o644); err != nil {
		t.Fatal(err)
	}

	out := runCLI(t, bin, "create", base, xmlPath)
	if !strings.Contains(out, "8 element nodes, 5 character nodes") {
		t.Fatalf("create output: %s", out)
	}

	out = runCLI(t, bin, "stats", base)
	if !strings.Contains(out, "13 nodes") {
		t.Fatalf("stats output: %s", out)
	}

	out = runCLI(t, bin, "query", base, "-q", "QUERY :- Label[author];")
	if !strings.Contains(out, "3 nodes selected") {
		t.Fatalf("query output: %s", out)
	}

	// -j routes through the parallel disk evaluator (which falls back to
	// the sequential scans on a document this small) with identical
	// results.
	out = runCLI(t, bin, "query", base, "-j", "4", "-q", "QUERY :- Label[author];")
	if !strings.Contains(out, "3 nodes selected") {
		t.Fatalf("parallel query output: %s", out)
	}

	out = runCLI(t, bin, "query", base, "-j", "0", "-xpath", "//book[not(author/following-sibling::author)]/title")
	if !strings.Contains(out, "1 nodes selected") {
		t.Fatalf("parallel negated xpath output: %s", out)
	}

	out = runCLI(t, bin, "query", base, "-xpath", "//book/title")
	if !strings.Contains(out, "2 nodes selected") {
		t.Fatalf("xpath output: %s", out)
	}

	// Negated XPath goes through the in-memory multi-pass path.
	out = runCLI(t, bin, "query", base, "-xpath", "//book[not(author/following-sibling::author)]/title")
	if !strings.Contains(out, "1 nodes selected") {
		t.Fatalf("negated xpath output: %s", out)
	}

	out = runCLI(t, bin, "query", base, "-q", "QUERY :- Label[title];", "-ids")
	ids := strings.Fields(out)
	if len(ids) != 2 {
		t.Fatalf("ids output: %s", out)
	}

	out = runCLI(t, bin, "query", base, "-q", "QUERY :- Label[title];", "-mark")
	if strings.Count(out, `arb:selected="true"`) != 2 {
		t.Fatalf("mark output: %s", out)
	}

	out = runCLI(t, bin, "cat", base)
	if !strings.Contains(out, "<lib><book><title>A</title>") {
		t.Fatalf("cat output: %s", out)
	}

	// Errors are reported, not panicked.
	if _, err := exec.Command(bin, "query", base, "-q", "nonsense").CombinedOutput(); err == nil {
		t.Fatal("bad program accepted")
	}
	if _, err := exec.Command(bin, "query", filepath.Join(dir, "missing"), "-q", "QUERY :- Root;").CombinedOutput(); err == nil {
		t.Fatal("missing database accepted")
	}
}

// TestCLIBatchMode runs a workload file through `query -f file -batch`:
// per-query counts in input order, comments and xpath: lines handled,
// incompatible flags rejected.
func TestCLIBatchMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "doc.xml")
	dbDir := filepath.Join(dir, "dbdir")
	if err := os.Mkdir(dbDir, 0o755); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dbDir, "db")
	if err := os.WriteFile(xmlPath, []byte(libraryXML), 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, bin, "create", base, xmlPath)

	workload := filepath.Join(dir, "queries.txt")
	if err := os.WriteFile(workload, []byte(`# the workload
QUERY :- Label[author];
xpath: //book/title
xpath: //book[not(author/following-sibling::author)]/title
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, bin, "query", base, "-f", workload, "-batch")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("batch output has %d lines, want 3:\n%s", len(lines), out)
	}
	for i, want := range []string{"3 nodes selected", "2 nodes selected", "1 nodes selected"} {
		if !strings.Contains(lines[i], want) {
			t.Fatalf("batch line %d = %q, want %q", i, lines[i], want)
		}
	}

	// Same workload in parallel mode: identical counts.
	if out2 := runCLI(t, bin, "query", base, "-f", workload, "-batch", "-j", "4"); out2 != out {
		t.Fatalf("parallel batch output differs:\n%s\nvs\n%s", out2, out)
	}

	// -batch needs -f, and refuses per-query output modes.
	if _, err := exec.Command(bin, "query", base, "-batch", "-q", "QUERY :- Root;").CombinedOutput(); err == nil {
		t.Fatal("-batch without -f accepted")
	}
	if _, err := exec.Command(bin, "query", base, "-f", workload, "-batch", "-ids").CombinedOutput(); err == nil {
		t.Fatal("-batch -ids accepted")
	}
	// No stray temp files next to the database.
	assertOnlyDatabaseFiles(t, dbDir)
}

// TestCLIServeSmoke is the `arb serve` smoke test: start the server,
// query it over HTTP (TMNF and XPath, plus /stats), then send SIGTERM
// and require a graceful drain — exit 0, "drained" on stdout, no stray
// files next to the database.
func TestCLIServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "doc.xml")
	dbDir := filepath.Join(dir, "dbdir")
	if err := os.Mkdir(dbDir, 0o755); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dbDir, "db")
	if err := os.WriteFile(xmlPath, []byte(libraryXML), 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, bin, "create", base, xmlPath)

	cmd := exec.Command(bin, "serve", base, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The server prints "serving <base> on <addr>" once the listener is
	// accepting; parse the address out of that line.
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, " on "); strings.Contains(line, "serving") && i >= 0 {
			addr = strings.Fields(line[i+4:])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("server never announced its address: %v", sc.Err())
	}
	url := "http://" + addr

	resp, err := http.Get(url + "/query?q=" + "QUERY%20%3A-%20Label%5Bauthor%5D%3B")
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %v", resp.StatusCode, out)
	}
	if c := out["results"].([]any)[0].(map[string]any)["count"].(float64); c != 3 {
		t.Fatalf("author count over HTTP = %v, want 3", c)
	}
	resp, err = http.Get(url + "/query?q=" + "xpath%3A%2F%2Fbook%2Ftitle")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if c := out["results"].([]any)[0].(map[string]any)["count"].(float64); c != 2 {
		t.Fatalf("title count over HTTP = %v, want 2", c)
	}
	resp, err = http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st["requests"].(float64) < 2 {
		t.Fatalf("stats requests = %v, want >= 2", st["requests"])
	}

	// Drain: SIGTERM must exit 0 after printing the drain lines.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var tail strings.Builder
	for sc.Scan() {
		tail.WriteString(sc.Text())
		tail.WriteString("\n")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("serve exited non-zero after SIGTERM: %v\n%s", err, tail.String())
	}
	if !strings.Contains(tail.String(), "drained") {
		t.Fatalf("drain output missing: %q", tail.String())
	}
	assertOnlyDatabaseFiles(t, dbDir)
}

// TestCLISignalCancelQuery interrupts a long-running `arb query` with
// SIGINT: the scan must abort promptly with a clear message and a
// non-zero exit, and no temporary state or aux files may remain next to
// the database.
func TestCLISignalCancelQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary and a multi-megabyte database")
	}
	bin := buildCLI(t)
	dbDir := t.TempDir()
	base := filepath.Join(dbDir, "big")
	// ~16M nodes (~33MB): a full unpruned scan pair takes long enough
	// that the signal lands mid-query on any machine.
	db, err := storage.CreateFullBinary(base, 23, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()

	// A multi-pass negated XPath query, forced unpruned: several scan
	// pairs of work, aux sidecars in flight when the signal arrives.
	cmd := exec.Command(bin, "query", base, "-noprune",
		"-xpath", "//a[not(b)]")
	var output strings.Builder
	cmd.Stdout = &output
	cmd.Stderr = &output
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let it get into the scans
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("query exited zero despite SIGINT\n%s", output.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("query did not exit after SIGINT\n%s", output.String())
	}
	if !strings.Contains(output.String(), "interrupted") {
		t.Fatalf("output does not mention the interruption: %q", output.String())
	}
	assertOnlyDatabaseFiles(t, dbDir)
}

// TestCLITimeoutCancel checks the -timeout flag: an expired deadline
// aborts the query with a clear message and a non-zero exit, and works
// normally when the deadline is generous.
func TestCLITimeoutCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "doc.xml")
	base := filepath.Join(dir, "db")
	if err := os.WriteFile(xmlPath, []byte(libraryXML), 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, bin, "create", base, xmlPath)

	// A generous deadline: the query completes normally.
	out := runCLI(t, bin, "query", base, "-timeout", "1m", "-q", "QUERY :- Label[author];")
	if !strings.Contains(out, "3 nodes selected") {
		t.Fatalf("query with timeout output: %s", out)
	}

	// An already-expired deadline: non-zero exit and a clear message,
	// on the plain and the multi-pass XPath paths alike.
	for _, args := range [][]string{
		{"query", base, "-timeout", "1ns", "-q", "QUERY :- Label[author];"},
		{"query", base, "-timeout", "1ns", "-j", "4", "-xpath", "//book[not(author)]"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			t.Fatalf("arb %s exited zero despite expired deadline\n%s", strings.Join(args, " "), out)
		}
		if !strings.Contains(string(out), "timed out") {
			t.Fatalf("arb %s: message does not mention the timeout: %s", strings.Join(args, " "), out)
		}
	}
	// No stray temporary files next to the database.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".arb", ".lab", ".idx", ".xml":
		default:
			t.Errorf("stray file after timeout: %s", e.Name())
		}
	}
}
