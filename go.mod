module arb

go 1.22
