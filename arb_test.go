package arb_test

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"arb"
	"arb/internal/testutil"
)

const libraryXML = `<lib><book><title>A</title><author>X</author><author>Y</author></book><book><title>B</title><author>Z</author></book></lib>`

// TestEndToEnd drives the full public path: XML -> database -> TMNF query
// in two scans -> marked XML output.
func TestEndToEnd(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lib")
	db, stats, err := arb.CreateDB(base, strings.NewReader(libraryXML))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if stats.ElemNodes != 8 || stats.CharNodes != 5 {
		t.Fatalf("stats: %d elements, %d chars", stats.ElemNodes, stats.CharNodes)
	}

	prog, err := arb.ParseProgram(`
		QUERY :- V.Label[author].NextSibling.NextSibling*.Label[author].
		         invNextSibling.invNextSibling*.Label[title];
	`)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := arb.NewEngine(prog, db.Names)
	if err != nil {
		t.Fatal(err)
	}
	res, ds, err := eng.RunDisk(db, arb.DiskOpts{})
	if err != nil {
		t.Fatal(err)
	}
	q := prog.Queries()[0]
	if res.Count(q) != 1 {
		t.Fatalf("selected %d titles, want 1", res.Count(q))
	}
	if ds.StateBytes != db.N*4 {
		t.Fatalf("state file: %d bytes for %d nodes", ds.StateBytes, db.N)
	}

	var buf bytes.Buffer
	if err := arb.EmitXML(db, &buf, func(v int64) bool { return res.Holds(q, arb.NodeID(v)) }); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `<title arb:selected="true">A</title>`) {
		t.Fatalf("title A not marked:\n%s", out)
	}
	if strings.Contains(out, `<title arb:selected="true">B</title>`) {
		t.Fatalf("title B wrongly marked:\n%s", out)
	}
}

func TestXPathFacade(t *testing.T) {
	tr, err := arb.ParseXML(strings.NewReader(libraryXML))
	if err != nil {
		t.Fatal(err)
	}
	q, err := arb.ParseXPath(`//book[not(author/following-sibling::author)]/title`)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := q.Eval(tr)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, ok := range sel {
		if ok {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("selected %d titles, want 1 (single-author book)", count)
	}
}

// TestEngineReuseAcrossDocuments checks footnote 15's design point: one
// engine's lazily-built automata serve many documents, and transition
// counts stop growing once the automata have converged.
func TestEngineReuseAcrossDocuments(t *testing.T) {
	prog, err := arb.ParseProgram(`QUERY :- V.Label[a].FirstChild.NextSibling*.Label[b];`)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	// All documents share one name table so Label[..] resolution is
	// stable across runs.
	names := testutil.RandomTreeWithNames(rng, nil, 200).Names()
	eng, err := arb.NewEngine(prog, names)
	if err != nil {
		t.Fatal(err)
	}
	var prev int
	converged := false
	for i := 0; i < 25; i++ {
		tr := testutil.RandomTreeWithNames(rng, names, 200)
		if _, err := eng.Run(tr, arb.RunOpts{}); err != nil {
			t.Fatal(err)
		}
		cur := eng.Stats().BUTransitions
		if i > 0 && cur == prev {
			converged = true
		}
		prev = cur
	}
	if !converged {
		t.Fatalf("transition table kept growing: %d transitions after 25 documents", prev)
	}
}

// TestDiskOptsFacade exercises the disk-run extensions through the
// public API: in-phase marked output and the aux sidecar chain.
func TestDiskOptsFacade(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lib")
	db, _, err := arb.CreateDB(base, strings.NewReader(libraryXML))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	prog, err := arb.ParseProgram(`QUERY :- Label[title];`)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := arb.NewEngine(prog, db.Names)
	if err != nil {
		t.Fatal(err)
	}
	var marked bytes.Buffer
	if _, _, err := eng.RunDisk(db, arb.DiskOpts{MarkTo: &marked}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(marked.String(), `arb:selected="true"`) != 2 {
		t.Fatalf("marked output: %s", marked.String())
	}

	// Negated XPath entirely on disk.
	q, err := arb.ParseXPath(`//book[not(author/following-sibling::author)]/title`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.EvalDisk(db, filepath.Dir(base), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(q.Main.Queries()[0]) != 1 {
		t.Fatalf("EvalDisk selected %d titles, want 1", res.Count(q.Main.Queries()[0]))
	}
}
