package arb_test

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"arb"
)

// cachedIDs collects the selected ids of a result's first query.
func cachedIDs(res *arb.Result, q arb.Pred) []int64 {
	var ids []int64
	res.Walk(q, func(v arb.NodeID) bool {
		ids = append(ids, int64(v))
		return true
	})
	return ids
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertZeroScan holds a cache-served profile to the tier's promise:
// answering from the cache means no automata pass ran and no database
// byte was read.
func assertZeroScan(t *testing.T, prof *arb.Profile, label string) {
	t.Helper()
	if prof.Passes != 0 {
		t.Fatalf("%s: cache-served execution ran %d passes, want 0", label, prof.Passes)
	}
	if b := prof.Disk.Phase1.Bytes + prof.Disk.Phase2.Bytes; b != 0 {
		t.Fatalf("%s: cache-served execution read %d database bytes, want 0", label, b)
	}
}

// TestResCacheDifferentialStrategies holds cached and subsumed answers
// to the uncached truth across every execution strategy: in-memory and
// on-disk, sequential and parallel, plus the shared-scan batch. For each
// strategy the second cache-opted execution must be an exact hit with
// zero scans and a result bit-identical to a plain Exec.
func TestResCacheDifferentialStrategies(t *testing.T) {
	ctx := context.Background()
	tree := buildCatalog(t, 300)
	base := filepath.Join(t.TempDir(), "db")
	db, err := arb.CreateDBFromTree(base, tree)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()

	sources := []string{"//item", "//flag", "//item/name", "//catalog/item"}
	queries := make([]*arb.XPathQuery, len(sources))
	for i, src := range sources {
		if queries[i], err = arb.ParseXPath(src); err != nil {
			t.Fatal(err)
		}
	}

	// Uncached truth, computed once on a cache-less disk session.
	baseSess, err := arb.OpenSession(base)
	if err != nil {
		t.Fatal(err)
	}
	defer baseSess.Close()
	truth := make([][]int64, len(sources))
	for i, q := range queries {
		pq, err := baseSess.PrepareXPath(q)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := pq.Exec(ctx, arb.ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		truth[i] = cachedIDs(res, pq.Queries()[0])
	}

	strategies := []struct {
		name    string
		mem     bool
		workers int
	}{
		{"mem-seq", true, 1},
		{"mem-par", true, -1},
		{"disk-seq", false, 1},
		{"disk-par", false, -1},
	}
	for _, st := range strategies {
		t.Run(st.name, func(t *testing.T) {
			var sess *arb.Session
			if st.mem {
				sess = arb.NewSession(tree)
			} else {
				var err error
				if sess, err = arb.OpenSession(base); err != nil {
					t.Fatal(err)
				}
				defer sess.Close()
			}
			sess.SetResultCache(1 << 22)
			opts := arb.ExecOpts{Workers: st.workers, ResultCache: true, Stats: true}
			for i, q := range queries {
				pq, err := sess.PrepareXPath(q)
				if err != nil {
					t.Fatal(err)
				}
				// First cache-opted execution: a miss (or, if an earlier
				// query's entry subsumes this one, a subsumption answer) —
				// either way the result must equal the uncached truth and a
				// repeat must be an exact zero-scan hit.
				res1, _, err := pq.Exec(ctx, opts)
				if err != nil {
					t.Fatal(err)
				}
				if got := cachedIDs(res1, pq.Queries()[0]); !sameIDs(got, truth[i]) {
					t.Fatalf("%s: first cached exec differs from truth (%d vs %d ids)", sources[i], len(got), len(truth[i]))
				}
				res2, prof2, err := pq.Exec(ctx, opts)
				if err != nil {
					t.Fatal(err)
				}
				if prof2.ResultCache != "hit" {
					t.Fatalf("%s: repeat kind = %q, want hit", sources[i], prof2.ResultCache)
				}
				assertZeroScan(t, prof2, sources[i])
				if got := cachedIDs(res2, pq.Queries()[0]); !sameIDs(got, truth[i]) {
					t.Fatalf("%s: cached result differs from truth", sources[i])
				}
			}
		})
	}

	t.Run("batch", func(t *testing.T) {
		sess, err := arb.OpenSession(base)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		sess.SetResultCache(1 << 22)
		items := make([]any, len(queries))
		for i, q := range queries {
			items[i] = q
		}
		pb, err := sess.PrepareBatch(items...)
		if err != nil {
			t.Fatal(err)
		}
		// The batch publishes every member on completion...
		res, _, err := pb.Exec(ctx, arb.ExecOpts{ResultCache: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res {
			if got := cachedIDs(res[i], pb.Queries(i)[0]); !sameIDs(got, truth[i]) {
				t.Fatalf("%s: batch result differs from truth", sources[i])
			}
		}
		// ...so scalar repeats of each member are zero-scan exact hits.
		for i, q := range queries {
			pq, err := sess.PrepareXPath(q)
			if err != nil {
				t.Fatal(err)
			}
			res, prof, err := pq.Exec(ctx, arb.ExecOpts{ResultCache: true, Stats: true})
			if err != nil {
				t.Fatal(err)
			}
			if prof.ResultCache != "hit" {
				t.Fatalf("%s: post-batch kind = %q, want hit", sources[i], prof.ResultCache)
			}
			assertZeroScan(t, prof, sources[i])
			if got := cachedIDs(res, pq.Queries()[0]); !sameIDs(got, truth[i]) {
				t.Fatalf("%s: post-batch cached result differs from truth", sources[i])
			}
		}
	})
}

// TestResCacheSubsumedAnswers proves the semantic-subsumption path end
// to end: a broad label query's published entry answers a narrower label
// query without any scan, bit-identically to the narrower query's own
// execution, and the derived entry makes the repeat an exact hit.
func TestResCacheSubsumedAnswers(t *testing.T) {
	ctx := context.Background()
	base := filepath.Join(t.TempDir(), "db")
	db, err := arb.CreateDBFromTree(base, buildCatalog(t, 300))
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	sess, err := arb.OpenSession(base)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.SetResultCache(1 << 22)

	broad, err := arb.ParseProgram(`QUERY :- Label[flag]; QUERY :- Label[name];`)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := arb.ParseProgram(`QUERY :- Label[flag];`)
	if err != nil {
		t.Fatal(err)
	}
	pqBroad, err := sess.Prepare(broad)
	if err != nil {
		t.Fatal(err)
	}
	pqNarrow, err := sess.Prepare(narrow)
	if err != nil {
		t.Fatal(err)
	}

	// Uncached truth for the narrow query.
	resTruth, _, err := pqNarrow.Exec(ctx, arb.ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := cachedIDs(resTruth, pqNarrow.Queries()[0])
	if len(want) == 0 {
		t.Fatal("degenerate document: narrow query selects nothing")
	}

	// Publish the broad entry, then answer the narrow query from it.
	if _, _, err := pqBroad.Exec(ctx, arb.ExecOpts{ResultCache: true}); err != nil {
		t.Fatal(err)
	}
	res, prof, err := pqNarrow.Exec(ctx, arb.ExecOpts{ResultCache: true, Stats: true})
	if err != nil {
		t.Fatal(err)
	}
	if prof.ResultCache != "subsumed" {
		t.Fatalf("narrow query kind = %q, want subsumed", prof.ResultCache)
	}
	assertZeroScan(t, prof, "subsumed answer")
	if got := cachedIDs(res, pqNarrow.Queries()[0]); !sameIDs(got, want) {
		t.Fatalf("subsumed answer differs from truth (%d vs %d ids)", len(got), len(want))
	}

	// The derived entry turns the repeat into an exact hit, and TryCached
	// sees it without executing anything.
	if _, prof, err := pqNarrow.Exec(ctx, arb.ExecOpts{ResultCache: true, Stats: true}); err != nil || prof.ResultCache != "hit" {
		t.Fatalf("repeat: kind = %q, err = %v, want an exact hit", prof.ResultCache, err)
	}
	if res, prof, ok := pqNarrow.TryCached(); !ok || prof.ResultCache != "hit" {
		t.Fatalf("TryCached = (_, %+v, %v), want a hit", prof, ok)
	} else if got := cachedIDs(res, pqNarrow.Queries()[0]); !sameIDs(got, want) {
		t.Fatal("TryCached result differs from truth")
	}
	stats, ok := sess.ResultCacheStats()
	if !ok || stats.Subsumed != 1 {
		t.Fatalf("stats = %+v (ok=%v), want exactly one subsumed answer", stats, ok)
	}
}

// TestResCacheVersionChurn patches and compacts a versioned store while
// cache-opted executions run, sequentially and concurrently under -race:
// every cached answer must match the uncached truth of the version it
// reports, a committed patch must never be masked by a stale entry, and
// no snapshot pin may leak.
func TestResCacheVersionChurn(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(7))
	base := filepath.Join(t.TempDir(), "db")
	doc, err := arb.ParseXML(strings.NewReader("<a>" + randElemXML(r, nil, 60) + randElemXML(r, nil, 60) + "</a>"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := arb.CreateDBFromTree(base, doc)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	sess, err := arb.OpenVersionedSession(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.SetResultCache(1 << 22)

	sources := []string{"//b", "//c", "//b//d"}
	prepared := make([]*arb.PreparedQuery, len(sources))
	for i, src := range sources {
		q, err := arb.ParseXPath(src)
		if err != nil {
			t.Fatal(err)
		}
		if prepared[i], err = sess.PrepareXPath(q); err != nil {
			t.Fatal(err)
		}
	}

	mutate := func(round int) {
		t.Helper()
		if round%3 == 2 {
			if _, err := sess.Compact(ctx); err != nil {
				t.Fatal(err)
			}
			return
		}
		frag, err := arb.ParseXML(strings.NewReader(randElemXML(r, nil, 30)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Patch(ctx, arb.PatchOp{Op: "insert-child", Node: 0, Tree: frag}); err != nil {
			t.Fatal(err)
		}
	}

	// Sequential churn: at every version, warm + repeat + cross-check.
	for round := 0; round < 6; round++ {
		for i, pq := range prepared {
			resU, _, err := pq.Exec(ctx, arb.ExecOpts{})
			if err != nil {
				t.Fatal(err)
			}
			want := cachedIDs(resU, pq.Queries()[0])
			if _, _, err := pq.Exec(ctx, arb.ExecOpts{ResultCache: true}); err != nil {
				t.Fatal(err)
			}
			res, prof, err := pq.Exec(ctx, arb.ExecOpts{ResultCache: true, Stats: true})
			if err != nil {
				t.Fatal(err)
			}
			if prof.ResultCache != "hit" {
				t.Fatalf("round %d %s: repeat kind = %q, want hit", round, sources[i], prof.ResultCache)
			}
			if prof.Version != sess.Version() {
				t.Fatalf("round %d %s: cached answer reports version %d, session is at %d — stale entry served",
					round, sources[i], prof.Version, sess.Version())
			}
			if got := cachedIDs(res, pq.Queries()[0]); !sameIDs(got, want) {
				t.Fatalf("round %d %s: cached answer differs from version-%d truth", round, sources[i], sess.Version())
			}
		}
		mutate(round)
	}

	// Concurrent churn under -race: readers loop cache-opted executions
	// while the writer commits patches. Every answer must agree with the
	// version it reports (count-stable within one execution is guaranteed
	// by MVCC; here we just require clean completion and no data races),
	// and afterwards no snapshot pin may remain.
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pq := prepared[g%len(prepared)]
			for i := 0; i < 40; i++ {
				if _, _, err := pq.Exec(ctx, arb.ExecOpts{ResultCache: true}); err != nil {
					errc <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 8; i++ {
		mutate(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Final agreement at the settled version, then the leak check.
	for i, pq := range prepared {
		resU, _, err := pq.Exec(ctx, arb.ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		resC, prof, err := pq.Exec(ctx, arb.ExecOpts{ResultCache: true, Stats: true})
		if err != nil {
			t.Fatal(err)
		}
		if prof.Version != sess.Version() {
			t.Fatalf("%s: settled cached answer reports version %d, session is at %d", sources[i], prof.Version, sess.Version())
		}
		if !sameIDs(cachedIDs(resC, pq.Queries()[0]), cachedIDs(resU, pq.Queries()[0])) {
			t.Fatalf("%s: settled cached answer differs from uncached truth", sources[i])
		}
	}
	if ss, ok := sess.StoreStats(); !ok || ss.Snapshots != 0 {
		t.Fatalf("store stats = %+v (ok=%v), want zero outstanding snapshot pins", ss, ok)
	}
}
