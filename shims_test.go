package arb_test

import (
	"context"
	"path/filepath"
	"testing"

	"arb"
)

// TestPreparedQueryCount covers Count on both backends: it must equal the
// first query predicate's count from a full Exec.
func TestPreparedQueryCount(t *testing.T) {
	tr := buildCatalog(t, 300)
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	prog, err := arb.ParseProgram(`QUERY :- Label[flag];`)
	if err != nil {
		t.Fatal(err)
	}
	for name, sess := range map[string]*arb.Session{
		"memory": arb.NewSession(tr),
		"disk":   arb.NewDBSession(db),
	} {
		pq, err := sess.Prepare(prog)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := pq.Exec(context.Background(), arb.ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		want := res.Count(pq.Queries()[0])
		if want != 200 {
			t.Fatalf("%s: Exec counted %d flags, want 200", name, want)
		}
		got, err := pq.Count(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: Count() = %d, Exec counted %d", name, got, want)
		}
	}
	assertOnlyDatabaseFiles(t, dir)
}

// TestDeprecatedEngineShims locks down the deprecated context-free entry
// points — Engine.Run, Engine.RunDisk, Engine.RunDiskParallel and
// arb.RunParallel — against the Session/PreparedQuery path: same selected
// nodes everywhere.
func TestDeprecatedEngineShims(t *testing.T) {
	tr := buildCatalog(t, 400)
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	prog, err := arb.ParseProgram(`QUERY :- V.Label[item].FirstChild.NextSibling*.Label[flag];`)
	if err != nil {
		t.Fatal(err)
	}

	pq, err := arb.NewDBSession(db).Prepare(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := pq.Exec(context.Background(), arb.ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	q := pq.Queries()[0]
	want := res.Selected(q)
	if len(want) == 0 {
		t.Fatal("reference query selected nothing; the shim comparison would be vacuous")
	}

	check := func(name string, got []arb.NodeID) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s selected %d nodes, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: node %d is %d, want %d", name, i, got[i], want[i])
			}
		}
	}

	e, err := arb.NewEngine(prog, tr.Names())
	if err != nil {
		t.Fatal(err)
	}
	memRes, err := e.Run(tr, arb.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	check("Engine.Run", memRes.Selected(q))

	parRes, err := arb.RunParallel(e, tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	check("RunParallel", parRes.Selected(q))

	de, err := arb.NewEngine(prog, db.Names)
	if err != nil {
		t.Fatal(err)
	}
	diskRes, ds, err := de.RunDisk(db, arb.DiskOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Phase1.Nodes != db.N || ds.Phase2.Nodes != db.N {
		t.Fatalf("RunDisk scans visited %d/%d nodes, want %d each", ds.Phase1.Nodes, ds.Phase2.Nodes, db.N)
	}
	check("Engine.RunDisk", diskRes.Selected(q))

	pdRes, _, err := de.RunDiskParallel(db, 4, arb.DiskOpts{})
	if err != nil {
		t.Fatal(err)
	}
	check("Engine.RunDiskParallel", pdRes.Selected(q))

	assertOnlyDatabaseFiles(t, dir)
}

// TestDeprecatedXPathEvalShims locks down XPathQuery.Eval and EvalDisk
// (the pre-session multi-pass entry points) against PreparedQuery.Exec.
func TestDeprecatedXPathEvalShims(t *testing.T) {
	tr := buildCatalog(t, 200)
	dir := t.TempDir()
	db, err := arb.CreateDBFromTree(filepath.Join(dir, "catalog"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	xq, err := arb.ParseXPath(`//item[not(flag)]/name`)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := arb.NewSession(tr).PrepareXPath(xq)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := pq.Exec(context.Background(), arb.ExecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	q := pq.Queries()[0]

	truth, err := xq.Eval(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != tr.Len() {
		t.Fatalf("Eval returned %d entries for %d nodes", len(truth), tr.Len())
	}
	for v := 0; v < tr.Len(); v++ {
		if truth[v] != res.Holds(q, arb.NodeID(v)) {
			t.Fatalf("Eval(%d) = %v, Exec says %v", v, truth[v], res.Holds(q, arb.NodeID(v)))
		}
	}

	// EvalDisk returns the main pass's unified result; compare counts and
	// membership through the shared query predicate.
	diskRes, err := xq.EvalDisk(db, dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := diskRes.Count(q), res.Count(q); got != want {
		t.Fatalf("EvalDisk counted %d nodes, Exec %d", got, want)
	}
	for v := 0; v < tr.Len(); v++ {
		if diskRes.Holds(q, arb.NodeID(v)) != res.Holds(q, arb.NodeID(v)) {
			t.Fatalf("EvalDisk and Exec disagree on node %d", v)
		}
	}
	assertOnlyDatabaseFiles(t, dir)
}
